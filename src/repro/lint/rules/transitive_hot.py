"""RL006 — transitive hot-loop purity.

RL001 audits the body of every ``@hot_loop`` function, but it sees one
file at a time: extract a helper out of a kernel (or call across
``vec_paths``/``vec_lp`` module lines) and the helper's body silently
escapes the allocation-free contract.  RL006 closes the loophole with
the call graph: **every project function reachable from a** ``@hot_loop``
**kernel must itself be** ``@hot_loop`` — which re-arms RL001 on its body
— or carry an explicit waiver.

Vetted numpy intrinsics and other external callees are exempt by
construction (they are not project functions, so they never enter the
closure).  Functions a kernel only calls through truly dynamic dispatch
the resolver cannot see are likewise not flagged — the graph
under-approximates.  The remediations for a genuine finding:

* mark the helper ``@hot_loop`` (preferred — RL001 then audits it), or
* waive the def line with ``# reprolint: disable=RL006`` when the call
  is intentionally outside the hot path (e.g. a cold error branch).
"""

from __future__ import annotations

from typing import Iterable, List

from ..findings import Finding
from .base import Rule, is_hot_loop

__all__ = ["TransitiveHotLoopRule"]


def _short(qname: str) -> str:
    """``repro.core.vec_paths:_reduce_one`` → ``vec_paths._reduce_one``."""
    module, _, qual = qname.rpartition(":")
    tail = module.rsplit(".", 1)[-1] if module else module
    return f"{tail}.{qual}" if tail else qual


class TransitiveHotLoopRule(Rule):
    """Everything reachable from a ``@hot_loop`` kernel is ``@hot_loop``."""

    rule_id = "RL006"
    name = "transitive-hot-loop"
    summary = (
        "functions reachable from @hot_loop kernels must be @hot_loop "
        "(or explicitly waived)"
    )

    _SCOPE = ("src/",)

    def check_graph(self, project: "object") -> Iterable[Finding]:
        index = project.index  # type: ignore[attr-defined]
        graph = project.graph  # type: ignore[attr-defined]
        roots: List[str] = sorted(
            qname
            for qname, info in index.functions.items()
            if not info.module.is_test
            and info.module.path_matches(self._SCOPE)
            and is_hot_loop(info.node)
        )
        root_set = set(roots)
        reached, parents = graph.reachable_with_parents(roots)
        findings: List[Finding] = []
        for qname in sorted(reached - root_set):
            info = index.functions.get(qname)
            if info is None:
                continue
            if info.module.is_test or not info.module.path_matches(self._SCOPE):
                continue
            if is_hot_loop(info.node):
                continue
            chain = graph.chain(parents, qname)
            via = " -> ".join(_short(q) for q in chain)
            findings.append(
                self.finding(
                    info.module,
                    info.node,
                    f"'{info.display_name}' is reachable from @hot_loop "
                    f"kernel '{_short(chain[0])}' ({via}) but is not itself "
                    "@hot_loop",
                    fixit=(
                        "mark it @hot_loop so RL001 audits its body, or waive "
                        "the def line with '# reprolint: disable=RL006' if the "
                        "call is intentionally off the hot path"
                    ),
                )
            )
        return findings
