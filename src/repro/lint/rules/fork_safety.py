"""RL007 — fork safety of parallel-worker payloads.

``solve_by_components_parallel`` ships component subproblems to a
``multiprocessing`` pool.  On fork, every worker inherits a *copy* of
process-global state — the :class:`~repro.obs.metrics.MetricsRegistry`,
the telemetry singleton, module-level caches — so a worker-side mutation
is silently lost (or, under spawn/threads, races the parent).  The
sanctioned channel is the one the workers already use: per-worker
telemetry/metrics *sessions* whose records travel back through the trace
stamps and are merged by the parent.

RL007 finds every function reachable from a pool-worker payload (the
callable handed to ``pool.map``/``imap``/``apply_async``/… or
``executor.submit``, the ``target=`` of a ``multiprocessing.Process`` —
how the shard router boots its worker fleet — or the callable handed to
``loop.run_in_executor`` by the async front-end's dispatchers) and
flags, inside that closure:

* calls to ``repro.obs.metrics.get_metrics`` — grabbing the process-
  global registry in worker code;
* ``inc``/``observe``/``set_gauge`` on a value resolving to that
  registry;
* ``global`` declarations — rebinding module state in a forked child;
* mutation of module-level containers (caches) via method call,
  subscript or attribute store.

Calls to the session APIs themselves (``metrics_session``,
``telemetry_session``, ``enable``/``disable``, ``write_trace``) are not
flagged, and the :mod:`repro.obs` modules that *implement* the state are
exempt.  Intentional worker-side module state (e.g. the lazy numpy memo)
is waived inline with ``# reprolint: disable=RL007``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..dataflow import iter_function_body
from ..findings import Finding
from .base import Rule

__all__ = ["ForkSafetyRule"]

#: Pool/executor methods whose first argument is a worker payload.
_POOL_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "starmap",
        "map_async",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: Callables whose ``target=`` keyword is a worker payload.
_PROCESS_CTORS = frozenset({"Process"})

#: MetricsRegistry write methods.
_METRIC_WRITES = frozenset({"inc", "observe", "set_gauge"})

#: Container-mutating method names (flagged on module-global receivers).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "discard",
        "remove",
        "clear",
        "pop",
        "popitem",
    }
)

_GET_METRICS = "repro.obs.metrics:get_metrics"
_REGISTRY_CLASS = "repro.obs.metrics:MetricsRegistry"

#: Modules that own the process-global state (and its session APIs).
_EXEMPT_SUFFIXES = (
    "repro/obs/metrics.py",
    "repro/obs/telemetry.py",
)


class ForkSafetyRule(Rule):
    """Worker-reachable code must not mutate process-global state."""

    rule_id = "RL007"
    name = "fork-safety"
    summary = (
        "functions reachable from parallel-worker payloads must not mutate "
        "process-global state (metrics registry, telemetry, module caches)"
    )

    _SCOPE = ("src/",)

    # ------------------------------------------------------------------
    def _roots(self, project: "object") -> List[str]:
        """Qnames of every callable passed as a pool-worker payload."""
        index = project.index  # type: ignore[attr-defined]
        roots: Set[str] = set()
        for qname, info in index.functions.items():
            if info.module.is_test:
                continue
            scope = project.scope(qname)  # type: ignore[attr-defined]
            for node in iter_function_body(info.node):
                if not isinstance(node, ast.Call):
                    continue
                payload = self._payload_expr(node)
                if payload is None:
                    continue
                for origin in scope.origins_of(payload):
                    if origin[0] == "func":
                        roots.add(origin[1])
                    elif origin[0] == "class":
                        init = index.lookup_method(origin[1], "__init__")
                        if init is not None:
                            roots.add(init[1])
        return sorted(roots)

    @staticmethod
    def _payload_expr(node: ast.Call) -> Optional[ast.expr]:
        """The worker-payload expression of a dispatch call, if any.

        Three dispatch shapes: ``pool.map(fn, …)`` and friends (payload is
        the first argument), ``loop.run_in_executor(executor, fn, …)``
        (payload follows the executor), and ``Process(target=fn)`` (payload
        is the ``target=`` keyword — also matches ``ctx.Process``).
        """
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name is None:
            return None
        if name in _POOL_METHODS and node.args:
            return node.args[0]
        if name == "run_in_executor" and len(node.args) >= 2:
            return node.args[1]
        if name in _PROCESS_CTORS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None

    # ------------------------------------------------------------------
    def check_graph(self, project: "object") -> Iterable[Finding]:
        index = project.index  # type: ignore[attr-defined]
        graph = project.graph  # type: ignore[attr-defined]
        roots = self._roots(project)
        if not roots:
            return ()
        reached, parents = graph.reachable_with_parents(roots)
        findings: List[Finding] = []
        for qname in sorted(reached):
            info = index.functions.get(qname)
            if info is None:
                continue
            if info.module.is_test or not info.module.path_matches(self._SCOPE):
                continue
            if info.module.path.endswith(_EXEMPT_SUFFIXES):
                continue
            root = graph.chain(parents, qname)[0]
            findings.extend(self._check_function(project, qname, info, root))
        return findings

    def _check_function(
        self, project: "object", qname: str, info, root: str
    ) -> Iterable[Finding]:
        scope = project.scope(qname)  # type: ignore[attr-defined]
        where = f"in worker-reachable '{info.display_name}' (payload root '{_tail(root)}')"
        for node in iter_function_body(info.node):
            if isinstance(node, ast.Global):
                yield self.finding(
                    info.module,
                    node,
                    f"'global {', '.join(node.names)}' {where}: module state "
                    "rebound in a forked worker is lost (or races) in the "
                    "parent",
                    fixit=(
                        "return the value through the worker payload / trace "
                        "stamps, or waive intentionally worker-local memos "
                        "with '# reprolint: disable=RL007'"
                    ),
                )
            elif isinstance(node, ast.Call):
                finding = self._check_call(scope, info, node, where)
                if finding is not None:
                    yield finding
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        global_name = _global_receiver(scope, target.value)
                        if global_name is not None:
                            yield self.finding(
                                info.module,
                                node,
                                f"store into module-level container "
                                f"'{global_name}' {where}",
                                fixit=(
                                    "publish through the sanctioned "
                                    "session/stamp APIs, or waive with "
                                    "'# reprolint: disable=RL007'"
                                ),
                            )
                            break

    def _check_call(
        self, scope, info, node: ast.Call, where: str
    ) -> Optional[Finding]:
        func = node.func
        func_origins = scope.origins_of(func)
        if any(o == ("func", _GET_METRICS) for o in func_origins):
            return self.finding(
                info.module,
                node,
                f"get_metrics() {where}: the process-global registry is a "
                "fork-inherited copy — worker increments never reach the "
                "parent",
                fixit=(
                    "meter inside the worker's own metrics_session and merge "
                    "via trace stamps, or waive with "
                    "'# reprolint: disable=RL007'"
                ),
            )
        if isinstance(func, ast.Attribute):
            receiver = scope.origins_of(func.value)
            if func.attr in _METRIC_WRITES and any(
                o in (("result", _GET_METRICS), ("instance", _REGISTRY_CLASS))
                for o in receiver
            ):
                return self.finding(
                    info.module,
                    node,
                    f"metrics registry .{func.attr}() {where}",
                    fixit=(
                        "meter inside the worker's own metrics_session, or "
                        "waive with '# reprolint: disable=RL007'"
                    ),
                )
            if func.attr in _MUTATORS:
                global_name = _global_receiver_from_origins(receiver)
                if global_name is not None:
                    return self.finding(
                        info.module,
                        node,
                        f".{func.attr}() on module-level container "
                        f"'{global_name}' {where}",
                        fixit=(
                            "mutations of fork-inherited caches are lost in "
                            "the parent; return results through the payload, "
                            "or waive with '# reprolint: disable=RL007'"
                        ),
                    )
        return None


def _tail(qname: str) -> str:
    return qname.rpartition(":")[2] or qname


def _global_receiver(scope, expr: ast.expr) -> Optional[str]:
    return _global_receiver_from_origins(scope.origins_of(expr))


def _global_receiver_from_origins(origins) -> Optional[str]:
    for origin in origins:
        if origin[0] == "global_mutable":
            return origin[1]
    return None
