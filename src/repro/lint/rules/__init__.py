"""The reprolint rule registry.

One module per rule, mirroring the one-contract-per-module layout of the
rest of the code base:

========  ===========================  ========================================
Rule      Name                         Contract
========  ===========================  ========================================
RL001     hot-loop-purity              ``@hot_loop`` kernels stay allocation-free
RL002     telemetry-discipline         spans close; hot loops stay silent
RL003     stat-key-registry            stat keys come from ``repro.core.result``
RL004     oracle-hook-parity           hook-exposing modules have differential tests
RL005     flat-buffer-dtype            numpy constructions pin ``dtype=``
RL006     transitive-hot-loop          @hot_loop closure stays @hot_loop
RL007     fork-safety                  worker payloads leave global state alone
RL008     request-context-propagation  serve verbs thread RequestContext/timeout
RL009     decision-log-determinism     log paths avoid set order / global RNGs
========  ===========================  ========================================

RL001–RL005 are per-file (``check_module``/``check_project``);
RL006–RL009 are cross-module (``check_graph``) and run over the project
call graph built by :mod:`repro.lint.graph`.

To add a rule: write ``rules/<name>.py`` subclassing
:class:`~repro.lint.rules.base.Rule`, give it a fresh ``RLxxx`` id, and
append the class to :data:`ALL_RULES` here.  The engine, CLI, and
suppression machinery pick it up with no further wiring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from .base import Rule, decorator_names, is_hot_loop
from .context_flow import RequestContextRule
from .determinism import DecisionLogDeterminismRule
from .dtype import DtypeDisciplineRule
from .fork_safety import ForkSafetyRule
from .hot_loop import HotLoopPurityRule
from .oracle_parity import OracleHookParityRule
from .stat_keys import StatKeyRegistryRule
from .telemetry import TelemetryDisciplineRule
from .transitive_hot import TransitiveHotLoopRule

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "DecisionLogDeterminismRule",
    "DtypeDisciplineRule",
    "ForkSafetyRule",
    "HotLoopPurityRule",
    "OracleHookParityRule",
    "RequestContextRule",
    "StatKeyRegistryRule",
    "TelemetryDisciplineRule",
    "TransitiveHotLoopRule",
    "decorator_names",
    "default_rules",
    "is_hot_loop",
]

#: Every registered rule class, in rule-id order.
ALL_RULES: Sequence[Type[Rule]] = (
    HotLoopPurityRule,
    TelemetryDisciplineRule,
    StatKeyRegistryRule,
    OracleHookParityRule,
    DtypeDisciplineRule,
    TransitiveHotLoopRule,
    ForkSafetyRule,
    RequestContextRule,
    DecisionLogDeterminismRule,
)

#: Rule classes keyed by their ``RLxxx`` identifier.
RULES_BY_ID: Dict[str, Type[Rule]] = {cls.rule_id: cls for cls in ALL_RULES}


def default_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    if only is None:
        return [cls() for cls in ALL_RULES]
    unknown = [rule_id for rule_id in only if rule_id not in RULES_BY_ID]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [RULES_BY_ID[rule_id]() for rule_id in only]
