"""RL008 — request-context propagation in the serving layer.

PR 8 threaded :class:`~repro.serve.context.RequestContext` through every
``SolverService`` verb so request ids, tenants and deadlines reach the
spans, metrics attribution and the parallel-worker stamps.  The contract
only holds if *every* hop forwards the context — and a per-file linter
cannot see that ``handle_request`` builds a context which ``solve`` must
hand to ``_request_scope``.  RL008 checks three cross-procedure
properties, scoped to ``repro/serve/`` on **both** ends of each edge
(``serve/context.py``, the provider, is exempt):

* **Verb surface** — a public method (sync or ``async def``) of a
  ``*Service``, ``*Frontend`` or ``*Router`` class that calls any
  context-accepting serve function must itself accept a
  ``context``/``ctx`` parameter; otherwise callers have no way to thread
  the request through that verb.  The front-end/router suffixes keep the
  sharded serving path (PR 10) under the same contract as the inline
  service verbs.
* **No drops** — a function that *binds* a request context (parameter,
  or a local built via ``RequestContext(...)``/``RequestContext.create``)
  must pass it to every context-accepting serve callee it invokes.
* **Deadline composition** — a function that binds a ``timeout`` must
  forward it to every timeout-accepting serve callee, so per-call
  timeouts keep composing with context deadlines into the stale-return
  degradation path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from ..dataflow import iter_function_body
from ..findings import Finding
from .base import Rule

__all__ = ["RequestContextRule"]

_CTX_NAMES = ("context", "ctx")
_CONTEXT_CLASS_TAIL = ":RequestContext"

#: Class-name suffixes whose public methods are request-serving verbs.
_VERB_CLASS_SUFFIXES = ("Service", "Frontend", "Router")

#: Dunder / lifecycle methods that are not service verbs.
_NON_VERBS = frozenset(
    {"__init__", "__enter__", "__exit__", "__aenter__", "__aexit__", "__repr__"}
)


def _tail(qname: str) -> str:
    return qname.rpartition(":")[2] or qname


def _passes(call: ast.Call, names: Iterable[str]) -> bool:
    """Whether the call forwards one of ``names`` (kw or same-named arg)."""
    wanted = set(names)
    for keyword in call.keywords:
        if keyword.arg in wanted or keyword.arg is None:  # **kwargs forwards
            return True
        value = keyword.value
        if isinstance(value, ast.Name) and value.id in wanted:
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in wanted:
            return True
        if isinstance(arg, ast.Attribute) and arg.attr in wanted:
            return True
    return False


def _binds_request_context(scope) -> bool:
    """Whether the function builds a RequestContext locally."""
    for values in scope.assigns.values():
        for value in values:
            for origin in scope.origins_of(value):
                if origin[0] in ("instance", "result") and (
                    origin[1].endswith(_CONTEXT_CLASS_TAIL)
                    or _CONTEXT_CLASS_TAIL + "." in origin[1]
                ):
                    return True
    return False


class RequestContextRule(Rule):
    """Serve verbs and handlers must accept and forward RequestContext."""

    rule_id = "RL008"
    name = "request-context-propagation"
    summary = (
        "serve verbs/handlers must accept RequestContext and forward it "
        "(and timeout) to every context-accepting callee"
    )

    _SCOPE = ("repro/serve/",)
    _PROVIDER_SUFFIX = ("repro/serve/context.py",)

    # ------------------------------------------------------------------
    def check_graph(self, project: "object") -> Iterable[Finding]:
        index = project.index  # type: ignore[attr-defined]
        in_scope: Dict[str, object] = {}
        ctx_accepting: Set[str] = set()
        timeout_accepting: Set[str] = set()
        for qname, info in index.functions.items():
            if (
                info.module.is_test
                or not info.module.path_matches(self._SCOPE)
                or info.module.path.endswith(self._PROVIDER_SUFFIX)
            ):
                continue
            in_scope[qname] = info
            if any(name in info.params for name in _CTX_NAMES):
                ctx_accepting.add(qname)
            if "timeout" in info.params:
                timeout_accepting.add(qname)

        findings: List[Finding] = []
        for qname in sorted(in_scope):
            info = in_scope[qname]
            scope = project.scope(qname)  # type: ignore[attr-defined]
            has_ctx_param = any(name in info.params for name in _CTX_NAMES)
            binds_ctx = has_ctx_param or _binds_request_context(scope)
            binds_timeout = "timeout" in info.params or "timeout" in scope.assigns
            is_verb = (
                info.class_name is not None
                and info.class_name.endswith(_VERB_CLASS_SUFFIXES)
                and not info.name.startswith("_")
                and info.name not in _NON_VERBS
            )
            calls_ctx_accepting = False
            for node in iter_function_body(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callees = {
                    origin[1]
                    for origin in scope.origins_of(node.func)
                    if origin[0] == "func"
                }
                ctx_callees = (callees & ctx_accepting) - {qname}
                if ctx_callees:
                    calls_ctx_accepting = True
                    if binds_ctx and not _passes(node, _CTX_NAMES):
                        findings.append(
                            self.finding(
                                info.module,
                                node,
                                f"'{info.display_name}' holds a RequestContext "
                                f"but calls '{_tail(sorted(ctx_callees)[0])}' "
                                "without forwarding it — the request id/tenant/"
                                "deadline are dropped on this hop",
                                fixit="pass context=context through the call",
                            )
                        )
                timeout_callees = (callees & timeout_accepting) - {qname}
                if (
                    timeout_callees
                    and binds_timeout
                    and not _passes(node, ("timeout",))
                ):
                    findings.append(
                        self.finding(
                            info.module,
                            node,
                            f"'{info.display_name}' holds a timeout but calls "
                            f"'{_tail(sorted(timeout_callees)[0])}' without "
                            "forwarding it — deadline composition breaks on "
                            "this hop",
                            fixit="pass timeout=timeout through the call",
                        )
                    )
            if is_verb and calls_ctx_accepting and not has_ctx_param:
                findings.append(
                    self.finding(
                        info.module,
                        info.node,
                        f"public service verb '{info.display_name}' reaches "
                        "context-accepting serve code but takes no "
                        "'context' parameter — callers cannot thread the "
                        "request through this verb",
                        fixit=(
                            "add 'context: Optional[RequestContext] = None' "
                            "and forward it"
                        ),
                    )
                )
        return findings
