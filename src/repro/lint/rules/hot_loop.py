"""RL001 — hot-loop purity for ``@hot_loop``-decorated kernels.

The flat kernels get their speed from a strict shape: a *prelude* that
binds every needed attribute/bound-method to a local, then loops whose
bodies touch only locals and flat buffers.  RL001 enforces that shape on
any function carrying the :func:`repro.core.hotpath.hot_loop` marker:

* **anywhere in the function** — no nested functions or lambdas (closure
  cells defeat CPython's fast locals), no ``try``/``except`` (pushes a
  block per entry), no comprehensions or generator expressions (each is
  an allocation plus, for generators, a frame);
* **inside loop bodies** (including ``while`` conditions, which re-run
  per iteration) — no dict/set/list literals, no calls to the allocating
  builtins ``dict``/``set``/``list``/``frozenset``/``sorted``, and no
  chained attribute lookups (``a.b.c``): bind them in the prelude.

Single attribute lookups (``self.adj``, ``workspace._nlive``) stay legal
inside loops — forbidding them would outlaw the cheap bookkeeping stores
the kernels genuinely need — but a *chain* is always two dict probes per
iteration and is what the prelude exists to hoist.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Tuple

from ..engine import LintModule
from ..findings import Finding
from .base import Rule, is_hot_loop

__all__ = ["HotLoopPurityRule"]

_ALLOCATING_BUILTINS = frozenset({"dict", "set", "list", "frozenset", "sorted"})
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


class HotLoopPurityRule(Rule):
    """Forbid allocations, closures and attribute chains in hot loops."""

    rule_id = "RL001"
    name = "hot-loop-purity"
    summary = (
        "@hot_loop functions must not allocate containers, build closures, "
        "enter try/except, or chase attribute chains inside loop bodies"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, _FUNCTION_DEFS) and is_hot_loop(node):
                yield from self._check_function(module, node)

    # ------------------------------------------------------------------
    def _check_function(self, module: LintModule, fn: ast.AST) -> Iterator[Finding]:
        reported: Dict[Tuple[int, int, str], Finding] = {}

        def report(node: ast.AST, kind: str, message: str, fixit: str) -> None:
            key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), kind)
            if key not in reported:
                reported[key] = self.finding(module, node, message, fixit=fixit)

        fn_name = getattr(fn, "name", "<hot>")
        # --- function-wide bans ---------------------------------------
        for node in ast.walk(fn):  # type: ignore[arg-type]
            if node is fn:
                continue
            if isinstance(node, _FUNCTION_DEFS + (ast.Lambda,)):
                report(
                    node,
                    "closure",
                    f"closure inside @hot_loop function '{fn_name}'",
                    "hoist the helper to module level and bind it in the prelude",
                )
            elif isinstance(node, ast.Try):
                report(
                    node,
                    "try",
                    f"try/except inside @hot_loop function '{fn_name}'",
                    "validate inputs before the loop; hot paths must not "
                    "pay for exception blocks",
                )
            elif isinstance(node, _COMPREHENSIONS):
                report(
                    node,
                    "comprehension",
                    f"comprehension inside @hot_loop function '{fn_name}' "
                    "allocates per evaluation",
                    "replace with an explicit loop over a reused buffer",
                )
        # --- loop-body bans -------------------------------------------
        for loop in ast.walk(fn):  # type: ignore[arg-type]
            if isinstance(loop, ast.While):
                region: List[ast.AST] = [loop.test, *loop.body, *loop.orelse]
            elif isinstance(loop, ast.For):
                region = [*loop.body, *loop.orelse]
            else:
                continue
            self._check_loop_region(module, fn_name, region, report)
        yield from sorted(reported.values(), key=Finding.sort_key)

    def _check_loop_region(
        self,
        module: LintModule,
        fn_name: str,
        region: Sequence[ast.AST],
        report,
    ) -> None:
        nodes: List[ast.AST] = []
        for stmt in region:
            nodes.extend(ast.walk(stmt))
        for node in nodes:
            if isinstance(node, ast.Dict):
                report(
                    node,
                    "alloc",
                    f"dict literal inside a loop of @hot_loop '{fn_name}'",
                    "allocate once in the prelude and reuse",
                )
            elif isinstance(node, ast.Set):
                report(
                    node,
                    "alloc",
                    f"set literal inside a loop of @hot_loop '{fn_name}'",
                    "use the timestamped mark-array idiom instead of per-step sets",
                )
            elif isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
                report(
                    node,
                    "alloc",
                    f"list literal inside a loop of @hot_loop '{fn_name}'",
                    "hoist the list to the prelude and .clear() it per iteration",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ALLOCATING_BUILTINS
            ):
                report(
                    node,
                    "alloc-call",
                    f"allocating builtin '{node.func.id}()' inside a loop of "
                    f"@hot_loop '{fn_name}'",
                    "allocate outside the loop or restructure to flat buffers",
                )
        # Chained attribute lookups: flag only the outermost link of each
        # chain so `a.b.c.d` yields one finding, not two.
        chains = [
            node
            for node in nodes
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute)
        ]
        inner = {id(node.value) for node in chains}
        for node in chains:
            if id(node) not in inner:
                report(
                    node,
                    "chain",
                    f"chained attribute lookup '{ast.unparse(node)}' inside a "
                    f"loop of @hot_loop '{fn_name}'",
                    "bind the chain to a local in the prelude",
                )
