"""The rule protocol shared by every reprolint rule.

A rule is a small stateless object with a class-level identity
(``rule_id``, ``name``, ``summary``) and two check entry points:

* :meth:`Rule.check_module` — per-file analysis; receives one
  :class:`~repro.lint.engine.LintModule` and yields findings.
* :meth:`Rule.check_project` — whole-run analysis for rules that need to
  cross-reference files (RL004 walks the test ASTs to certify the source
  modules); receives every module of the run.
* :meth:`Rule.check_graph` — call-graph analysis for the cross-module
  rules (RL006–RL009); receives a :class:`~repro.lint.graph.Project`
  exposing the function index, dataflow scopes and call graph.  The
  engine only builds the project view when at least one active rule
  overrides this hook.

Rules yield :class:`~repro.lint.findings.Finding` records; the engine
owns suppression filtering and ordering.  New rules register themselves
by joining ``ALL_RULES`` in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Sequence

from ..engine import LintModule
from ..findings import ERROR, Finding

__all__ = ["Rule", "decorator_names", "is_hot_loop"]


def decorator_names(fn: ast.AST) -> Iterator[str]:
    """The terminal names of a function's decorators (``a.b`` yields ``b``)."""
    for decorator in getattr(fn, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Attribute):
            yield target.attr


def is_hot_loop(fn: ast.AST) -> bool:
    """Whether a function definition carries the ``@hot_loop`` marker."""
    return "hot_loop" in decorator_names(fn)


class Rule:
    """Base class: identity plus the two check hooks (both default empty)."""

    #: The ``RLxxx`` identifier (class-level, unique across the registry).
    rule_id = "RL000"
    #: Short kebab-case name used in ``--list-rules`` output.
    name = "base"
    #: One-line description of the enforced contract.
    summary = ""

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        """Per-file analysis; yields findings for ``module``."""
        return ()

    def check_project(self, modules: Sequence[LintModule]) -> Iterable[Finding]:
        """Whole-run analysis over every module (cross-file rules only)."""
        return ()

    def check_graph(self, project: "object") -> Iterable[Finding]:
        """Call-graph analysis over a :class:`~repro.lint.graph.Project`.

        Only the cross-module rules override this; the engine skips
        project-graph construction entirely when no active rule does.
        """
        return ()

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def finding(
        self,
        module: LintModule,
        node: ast.AST,
        message: str,
        severity: str = ERROR,
        fixit: Optional[str] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``'s position in ``module``."""
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity,
            fixit=fixit,
        )
