"""RL002 — telemetry discipline: spans always close, hot paths stay silent.

The telemetry layer (:mod:`repro.obs.telemetry`) is built on two promises
the code base must keep by convention:

1. **Every span closes.**  ``phase(...)``, ``Telemetry.span(...)``,
   ``telemetry_session(...)``, ``.timed(...)`` and ``.scoped(...)`` are
   context managers whose exit handlers do the recording; calling one
   outside a ``with`` statement opens a span that can never close.
   Passing the call directly to ``ExitStack.enter_context(...)`` is the
   one sanctioned alternative — the stack's ``__exit__`` closes it.
   Likewise, a function that calls ``enable()`` must also call
   ``disable()`` (normally in a ``finally``), or the sink leaks across
   runs.
2. **Zero cost when off.**  A ``@hot_loop`` body may not contain *any*
   telemetry call site — not even the cheap ones — unless the call is
   guarded by a branch on the sink variable (``if telemetry is not
   None:``), because an unguarded call is paid on every iteration even
   with telemetry disabled.

The defining module ``repro/obs/telemetry.py`` is exempt (it returns
spans from helper functions by design), as are test modules (fixtures
construct half-open spans on purpose).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..engine import LintModule
from ..findings import Finding
from .base import Rule, is_hot_loop

__all__ = ["TelemetryDisciplineRule"]

#: Module-level context-manager factories that must appear as `with` items.
_WITH_ONLY_NAMES = frozenset({"phase", "telemetry_session"})
#: Method names (on any receiver) that must appear as `with` items.
_WITH_ONLY_ATTRS = frozenset({"span", "timed", "scoped"})
#: The full telemetry emission API, for the hot-loop silence check.
_TELEMETRY_ATTRS = frozenset(
    {"span", "count", "timer", "timed", "scoped", "add_counters", "record",
     "adopt", "profile"}
)
#: Receiver names that identify a telemetry sink by convention.
_SINK_NAMES = frozenset({"telemetry", "tele", "sink"})
#: Files where the protocol is implemented rather than consumed.
_EXEMPT_SUFFIXES = ("repro/obs/telemetry.py",)


def _callee(call: ast.Call):
    """``(name, attr)`` of a call: one of the two is None."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        return None, func.attr
    return None, None


class TelemetryDisciplineRule(Rule):
    """Spans close on all paths; hot loops emit nothing unguarded."""

    rule_id = "RL002"
    name = "telemetry-discipline"
    summary = (
        "telemetry spans must be opened in with-statements (and enable() "
        "paired with disable()); @hot_loop bodies may only touch telemetry "
        "behind an enabled-flag guard"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module.is_test or module.path.endswith(_EXEMPT_SUFFIXES):
            return
        tree = module.tree
        with_contexts = {
            id(item.context_expr)
            for node in ast.walk(tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        # ExitStack.enter_context(span(...)) closes the span on stack exit.
        with_contexts.update(
            id(arg)
            for node in ast.walk(tree)
            if isinstance(node, ast.Call) and _callee(node)[1] == "enter_context"
            for arg in node.args
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and id(node) not in with_contexts:
                name, attr = _callee(node)
                if name in _WITH_ONLY_NAMES or attr in _WITH_ONLY_ATTRS:
                    label = name or f".{attr}"
                    yield self.finding(
                        module,
                        node,
                        f"telemetry span '{label}(...)' opened outside a "
                        "with-statement may never close",
                        fixit="wrap the call in `with ... as span:`",
                    )
        yield from self._check_enable_pairing(module)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and is_hot_loop(
                node
            ):
                yield from self._check_hot_function(module, node)

    # ------------------------------------------------------------------
    def _check_enable_pairing(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            enable_call: Optional[ast.Call] = None
            has_disable = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    name, attr = _callee(sub)
                    if (name or attr) == "enable":
                        enable_call = enable_call or sub
                    elif (name or attr) == "disable":
                        has_disable = True
            if enable_call is not None and not has_disable:
                yield self.finding(
                    module,
                    enable_call,
                    f"'{node.name}' calls enable() without a matching "
                    "disable(); the telemetry sink leaks into later runs",
                    fixit="pair enable() with disable() in a try/finally "
                    "(or use telemetry_session())",
                )

    # ------------------------------------------------------------------
    def _check_hot_function(self, module: LintModule, fn: ast.AST) -> Iterator[Finding]:
        fn_name = getattr(fn, "name", "<hot>")
        found = []

        def visit(node: ast.AST, guards: Set[str]) -> None:
            if isinstance(node, ast.If):
                names = {
                    sub.id for sub in ast.walk(node.test) if isinstance(sub, ast.Name)
                }
                for child in node.body:
                    visit(child, guards | names)
                for child in node.orelse:
                    visit(child, guards)
                return
            if isinstance(node, ast.Call):
                name, attr = _callee(node)
                telemetryish = (
                    name in _WITH_ONLY_NAMES
                    or name == "get_telemetry"
                    or (
                        attr in _TELEMETRY_ATTRS
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in _SINK_NAMES
                    )
                )
                if telemetryish:
                    involved = {
                        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
                    }
                    if not (involved & guards):
                        found.append(
                            self.finding(
                                module,
                                node,
                                f"telemetry call inside @hot_loop '{fn_name}' "
                                "is paid on every iteration even when "
                                "telemetry is off",
                                fixit="hoist it out of the kernel, or guard "
                                "it with `if telemetry is not None:`",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, guards)

        for stmt in getattr(fn, "body", []):
            visit(stmt, set())
        yield from found
