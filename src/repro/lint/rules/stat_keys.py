"""RL003 — stat-key registry discipline.

The differential suite asserts that legacy and flat backends of the same
algorithm produce *equal* stats dicts, so the counter names must have one
canonical spelling.  That spelling lives in the registry in
:mod:`repro.core.result` (``STAT_*`` constants, unioned in
``ALL_STAT_KEYS``).  RL003 statically checks every stat-key *write site*
in ``src/`` against the registry:

* ``log.bump("degree-one")`` — the first argument of any ``bump(...)``
  call;
* ``stats["rounds"] = ...`` / ``+=`` — subscript stores into a mapping
  named ``stats`` or ``rule_counts``;
* ``stats = {"kernel_size": ...}`` and ``MISResult(..., stats={...})`` —
  literal dict displays bound or passed as ``stats``.

A literal key missing from the registry is an **error** (register a
``STAT_*`` constant and use it).  A key that is a ``STAT_*`` name is
proven-good.  Any other dynamic expression (``bump(rule)`` forwarding a
rule tag) cannot be resolved statically and is reported as **advice**:
visible under ``--strict``, non-blocking otherwise.

The same discipline covers **metric names**: the serving layer's metrics
(:mod:`repro.obs.metrics`) publish through ``inc(...)`` / ``observe(...)``
/ ``set_gauge(...)``, whose first argument must be a registered
``METRIC_*`` constant (the registry in ``repro.obs.metrics.METRIC_KEYS``
— checked at runtime too, but RL003 catches the typo before it runs).

The registry modules themselves and :mod:`repro.core.trace` (which
implements ``bump``) are exempt, as are test modules.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.core.result import ALL_STAT_KEYS
from repro.obs.metrics import METRIC_KEYS

from ..engine import LintModule
from ..findings import ADVICE, Finding
from .base import Rule

__all__ = ["StatKeyRegistryRule"]

#: Mapping names whose subscript stores are treated as stat-key writes.
_STAT_MAPPING_NAMES = frozenset({"stats", "rule_counts"})
#: Registry write methods whose first argument is a metric name.
_METRIC_WRITE_NAMES = frozenset({"inc", "observe", "set_gauge"})
#: Files that define rather than consume the registry protocol.
_EXEMPT_SUFFIXES = (
    "repro/core/result.py",
    "repro/core/trace.py",
    "repro/obs/metrics.py",
)


class StatKeyRegistryRule(Rule):
    """Every statically-visible stat key must come from the registry."""

    rule_id = "RL003"
    name = "stat-key-registry"
    summary = (
        "stat keys written via bump()/stats[...]/stats={...} must be "
        "registered STAT_* constants, and metric names passed to "
        "inc()/observe()/set_gauge() must be registered METRIC_* "
        "constants (dynamic keys are advice)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module.is_test or module.path.endswith(_EXEMPT_SUFFIXES):
            return
        if not module.path_matches(("src/",)):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_store(module, node)

    # ------------------------------------------------------------------
    def _check_call(self, module: LintModule, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if callee == "bump" and call.args:
            yield from self._check_key(module, call.args[0], "bump()")
        if callee in _METRIC_WRITE_NAMES and call.args:
            yield from self._check_metric_key(module, call.args[0], f"{callee}()")
        for keyword in call.keywords:
            if keyword.arg == "stats" and isinstance(keyword.value, ast.Dict):
                for key in keyword.value.keys:
                    if key is not None:
                        yield from self._check_key(module, key, "stats={...}")

    def _check_store(self, module: LintModule, node: ast.AST) -> Iterator[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in _STAT_MAPPING_NAMES
            ):
                yield from self._check_key(
                    module, target.slice, f"{target.value.id}[...]"
                )
            elif isinstance(target, ast.Name) and target.id in _STAT_MAPPING_NAMES:
                value = getattr(node, "value", None)
                if isinstance(value, ast.Dict):
                    for key in value.keys:
                        if key is not None:
                            yield from self._check_key(
                                module, key, f"{target.id} = {{...}}"
                            )

    def _check_metric_key(
        self, module: LintModule, key: ast.AST, context: str
    ) -> Iterator[Finding]:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value not in METRIC_KEYS:
                yield self.finding(
                    module,
                    key,
                    f"metric name '{key.value}' passed to {context} is not in "
                    "the registry (repro.obs.metrics.METRIC_KEYS)",
                    fixit="register a METRIC_* constant in repro/obs/metrics.py "
                    "and pass the constant here",
                )
        elif isinstance(key, ast.Name):
            if not key.id.startswith("METRIC_"):
                yield self.finding(
                    module,
                    key,
                    f"metric name '{key.id}' passed to {context} cannot be "
                    "resolved statically; use a METRIC_* registry constant "
                    "where possible",
                    severity=ADVICE,
                )
        # Other expressions (attribute lookups, f-strings, locals computed
        # from registry constants) stay silent: unlike stat keys, the
        # metric registry is enforced at runtime by MetricsRegistry._check,
        # so a dynamic name cannot silently mint an unregistered series.

    def _check_key(
        self, module: LintModule, key: ast.AST, context: str
    ) -> Iterator[Finding]:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value not in ALL_STAT_KEYS:
                yield self.finding(
                    module,
                    key,
                    f"stat key '{key.value}' written via {context} is not in "
                    "the registry (repro.core.result.ALL_STAT_KEYS)",
                    fixit="register a STAT_* constant in repro/core/result.py "
                    "and write the constant here",
                )
        elif isinstance(key, ast.Name):
            if not key.id.startswith("STAT_"):
                yield self.finding(
                    module,
                    key,
                    f"stat key '{key.id}' written via {context} cannot be "
                    "resolved statically; use a STAT_* registry constant "
                    "where possible",
                    severity=ADVICE,
                )
        elif not isinstance(key, ast.Starred):
            rendered: Optional[str]
            try:
                rendered = ast.unparse(key)
            except Exception:
                rendered = None
            yield self.finding(
                module,
                key,
                f"dynamic stat key {rendered or '<expr>'!s} written via "
                f"{context} cannot be checked against the registry",
                severity=ADVICE,
            )
