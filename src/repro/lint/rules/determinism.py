"""RL009 — decision-log determinism.

The differential-oracle corpus asserts byte-identical
:class:`~repro.core.trace.DecisionLog` trajectories between backends;
the replay machinery re-derives solutions from those logs.  Both break
the moment a driver's vertex order depends on Python set/dict iteration
(hash-randomised across processes) or an unseeded global RNG.  A
per-file linter cannot tell which functions feed a decision log — RL009
walks the call graph backwards from every **log-appending driver** (a
function invoking ``include``/``exclude``/``peel``/``push_path``/
``fold`` on a decision log) and flags, anywhere in that closure:

* ``for``-loop or comprehension iteration over a value of set origin
  (wrap it in ``sorted(...)`` — list origin — to fix);
* draws from the *module-level* ``random`` RNG (``random.random()``,
  ``random.choice`` …) — instance RNGs (the seeded ``rng`` hooks the
  solvers already thread) are fine;
* draws from ``numpy.random``'s global state, including seedless
  ``default_rng()``.

The :mod:`repro.core.trace` module itself is exempt (it implements the
log), as are tests.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..dataflow import iter_function_body
from ..findings import Finding
from .base import Rule

__all__ = ["DecisionLogDeterminismRule"]

#: DecisionLog append methods — calling one makes a function a "driver".
_APPENDERS = frozenset({"include", "exclude", "peel", "push_path", "fold"})

#: Drawing methods on the module-level ``random`` RNG.
_RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: Drawing attributes under ``numpy.random``'s global state.
_NP_DRAWS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "ranf",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "exponential",
    }
)

_LOG_CLASS = "repro.core.trace:DecisionLog"
_EXEMPT_SUFFIXES = ("repro/core/trace.py",)


def _is_log_receiver(scope, expr: ast.expr) -> bool:
    """Whether ``expr`` plausibly evaluates to a DecisionLog."""
    if isinstance(expr, ast.Name) and expr.id == "log":
        return True
    if isinstance(expr, ast.Attribute) and expr.attr == "log":
        return True
    for origin in scope.origins_of(expr):
        if origin == ("instance", _LOG_CLASS):
            return True
        if origin[0] == "param" and origin[1] == "log":
            return True
        if origin[0] == "param_attr" and origin[2] == "log":
            return True
    return False


class DecisionLogDeterminismRule(Rule):
    """No unordered iteration / global RNG on decision-log paths."""

    rule_id = "RL009"
    name = "decision-log-determinism"
    summary = (
        "functions reachable from DecisionLog-appending drivers must not "
        "iterate sets or draw from unseeded global RNGs"
    )

    _SCOPE = ("src/",)

    # ------------------------------------------------------------------
    def _roots(self, project: "object") -> List[str]:
        index = project.index  # type: ignore[attr-defined]
        roots: List[str] = []
        for qname, info in index.functions.items():
            if info.module.is_test or not info.module.path_matches(self._SCOPE):
                continue
            if info.module.path.endswith(_EXEMPT_SUFFIXES):
                continue
            scope = project.scope(qname)  # type: ignore[attr-defined]
            for node in iter_function_body(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _APPENDERS
                    and _is_log_receiver(scope, node.func.value)
                ):
                    roots.append(qname)
                    break
        return sorted(roots)

    # ------------------------------------------------------------------
    def check_graph(self, project: "object") -> Iterable[Finding]:
        index = project.index  # type: ignore[attr-defined]
        graph = project.graph  # type: ignore[attr-defined]
        roots = self._roots(project)
        if not roots:
            return ()
        reached, _ = graph.reachable_with_parents(roots)
        findings: List[Finding] = []
        for qname in sorted(reached):
            info = index.functions.get(qname)
            if info is None:
                continue
            if info.module.is_test or not info.module.path_matches(self._SCOPE):
                continue
            if info.module.path.endswith(_EXEMPT_SUFFIXES):
                continue
            findings.extend(self._check_function(project, qname, info))
        return findings

    def _check_function(self, project: "object", qname: str, info) -> Iterable[Finding]:
        scope = project.scope(qname)  # type: ignore[attr-defined]
        where = f"in '{info.display_name}' (on a decision-log path)"
        for node in iter_function_body(info.node):
            if isinstance(node, ast.For):
                if self._set_origin(scope, node.iter):
                    yield self.finding(
                        info.module,
                        node.iter,
                        f"iteration over a set {where}: element order is "
                        "hash-randomised across processes, so the decision "
                        "log diverges between runs",
                        fixit="iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if self._set_origin(scope, generator.iter):
                        yield self.finding(
                            info.module,
                            generator.iter,
                            f"comprehension over a set {where}: element order "
                            "is hash-randomised across processes",
                            fixit="iterate sorted(...) instead",
                        )
            elif isinstance(node, ast.Call):
                finding = self._check_rng(scope, info, node, where)
                if finding is not None:
                    yield finding

    @staticmethod
    def _set_origin(scope, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return any(
            origin == ("container", "set") for origin in scope.origins_of(expr)
        )

    def _check_rng(
        self, scope, info, node: ast.Call, where: str
    ) -> Optional[Finding]:
        func = node.func
        payloads: Set[str] = set()
        if isinstance(func, ast.Attribute):
            for origin in scope.origins_of(func.value):
                if origin[0] in ("module", "external"):
                    payloads.add(origin[1])
            if "random" in payloads and func.attr in _RANDOM_DRAWS:
                return self.finding(
                    info.module,
                    node,
                    f"random.{func.attr}() {where}: the module-level RNG is "
                    "process-global and unseeded — trajectories are not "
                    "reproducible",
                    fixit="thread the seeded rng hook (random.Random(seed))",
                )
            if any(p.endswith("numpy.random") or p == "numpy.random" for p in payloads):
                if func.attr in _NP_DRAWS:
                    return self.finding(
                        info.module,
                        node,
                        f"np.random.{func.attr}() {where}: numpy's global "
                        "RNG state breaks cross-process determinism",
                        fixit="use a seeded Generator (np.random.default_rng(seed))",
                    )
                if func.attr == "default_rng" and not node.args:
                    return self.finding(
                        info.module,
                        node,
                        f"np.random.default_rng() with no seed {where}",
                        fixit="pass an explicit seed",
                    )
        else:
            for origin in scope.origins_of(func):
                if origin[0] == "external":
                    dotted = origin[1]
                    head, _, tail = dotted.rpartition(".")
                    if head == "random" and tail in _RANDOM_DRAWS:
                        return self.finding(
                            info.module,
                            node,
                            f"{tail}() from the module-level random RNG "
                            f"{where}",
                            fixit=(
                                "thread the seeded rng hook "
                                "(random.Random(seed))"
                            ),
                        )
                    if head.endswith("numpy.random") and tail == "default_rng" and not node.args:
                        return self.finding(
                            info.module,
                            node,
                            f"default_rng() with no seed {where}",
                            fixit="pass an explicit seed",
                        )
        return None
