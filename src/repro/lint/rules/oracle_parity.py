"""RL004 — oracle-hook parity between algorithm modules and tests.

The flat kernels are trusted because every driver that exposes a
``workspace_factory`` / ``state_factory`` oracle hook has a differential
test that runs both backends and asserts byte-identical decisions.  That
trust decays silently: a new hook-bearing driver without a differential
test still imports, still passes its own unit tests, and still ships a
flat path nobody cross-checked.

RL004 is a *project* rule (it needs the whole file set at once).  It
collects every non-test ``src/`` module that defines a public function
with a parameter named ``workspace_factory`` or ``state_factory``, then
walks the test ASTs looking for a certificate: a test module that

* references at least one of the module's hook functions by name
  (``Name`` or ``Attribute`` mention — indirection through a local
  ``variant`` alias still counts because the import is a mention), and
* contains at least one call passing the hook keyword
  (``workspace_factory=...`` / ``state_factory=...``), i.e. actually
  exercises a non-default backend.

A hook-bearing module with no such test module is an error, anchored at
its first hook function definition.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from ..engine import LintModule
from ..findings import Finding
from .base import Rule

__all__ = ["OracleHookParityRule"]

_HOOK_PARAMS = frozenset({"workspace_factory", "state_factory"})


def _hook_functions(module: LintModule) -> List[Tuple[ast.AST, Set[str]]]:
    """Public ``def``s of ``module`` with a hook parameter, plus the hooks."""
    found: List[Tuple[ast.AST, Set[str]]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        args = node.args
        params = {
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        hooks = params & _HOOK_PARAMS
        if hooks:
            found.append((node, hooks))
    return found


def _mentioned_names(module: LintModule) -> Set[str]:
    """Every identifier a module mentions (names and attribute accesses)."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
    return names


def _hook_keywords_used(module: LintModule) -> Set[str]:
    """Which hook keywords the module passes in at least one call."""
    used: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            used.update(
                keyword.arg
                for keyword in node.keywords
                if keyword.arg in _HOOK_PARAMS
            )
    return used


class OracleHookParityRule(Rule):
    """Hook-exposing algorithm modules need a differential test."""

    rule_id = "RL004"
    name = "oracle-hook-parity"
    summary = (
        "every src module exposing workspace_factory/state_factory hooks "
        "must have a test module that names its hook functions and passes "
        "the hook keyword"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        test_evidence: List[Tuple[Set[str], Set[str]]] = [
            (_mentioned_names(module), _hook_keywords_used(module))
            for module in modules
            if module.is_test
        ]
        if not any(module.is_test for module in modules):
            # Src-only runs (e.g. `repro lint src/repro/core`) cannot
            # prove parity either way; stay silent instead of lying.
            return
        for module in modules:
            if module.is_test or not module.path_matches(("src/",)):
                continue
            hook_defs = _hook_functions(module)
            if not hook_defs:
                continue
            hook_names = {node.name for node, _ in hook_defs}  # type: ignore[attr-defined]
            needed: Set[str] = set()
            for _, hooks in hook_defs:
                needed |= hooks
            covered = any(
                (mentions & hook_names) and (keywords & needed)
                for mentions, keywords in test_evidence
            )
            if not covered:
                anchor, _ = hook_defs[0]
                hooks_label = ", ".join(sorted(needed))
                yield self.finding(
                    module,
                    anchor,
                    f"module exposes oracle hooks ({hooks_label}) via "
                    f"{', '.join(sorted(hook_names))} but no test module "
                    "references them AND passes the hook keyword",
                    fixit="add a differential test that runs the flat and "
                    "legacy backends through the hook and asserts equal "
                    "results",
                )
