"""RL005 — flat-buffer dtype discipline for numpy constructions.

The flat CSR workspaces and the perf harness interoperate on raw numpy
buffers; a construction that lets numpy *infer* a dtype (platform
``long`` on one machine, ``int32`` on another, ``float64`` from an
innocent literal) produces byte-different buffers and silent casts in
the differential logs.  RL005 therefore requires every numpy array
construction in ``src/`` to pin ``dtype=`` explicitly.

The rule resolves numpy aliases from the module's own imports (``import
numpy``, ``import numpy as _np``, ``from numpy import zeros``) — at any
nesting level, since the flat modules import numpy lazily inside
functions — and flags calls to the constructing functions (``zeros``,
``empty``, ``ones``, ``full``, ``arange``, ``array``, ``asarray``,
``fromiter``, ``frombuffer``) whose keywords lack ``dtype``.  The
``*_like`` constructors inherit their dtype from the template array and
are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import LintModule
from ..findings import Finding
from .base import Rule

__all__ = ["DtypeDisciplineRule"]

_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "ones", "full", "arange", "array", "asarray",
     "fromiter", "frombuffer"}
)


def _numpy_aliases(module: LintModule) -> Set[str]:
    """Local names bound to the numpy module (``numpy``, ``np``, ``_np`` …)."""
    aliases: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            aliases.update(
                alias.asname or alias.name
                for alias in node.names
                if alias.name == "numpy"
            )
    return aliases


def _numpy_direct_imports(module: LintModule) -> Set[str]:
    """Constructor names imported via ``from numpy import zeros`` forms."""
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy":
            names.update(
                alias.asname or alias.name
                for alias in node.names
                if alias.name in _CONSTRUCTORS
            )
    return names


class DtypeDisciplineRule(Rule):
    """numpy constructions in src/ must pin an explicit dtype."""

    rule_id = "RL005"
    name = "flat-buffer-dtype"
    summary = (
        "numpy array constructions (zeros/empty/arange/asarray/...) must "
        "pass an explicit dtype= so flat buffers are byte-stable"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module.is_test or not module.path_matches(("src/",)):
            return
        aliases = _numpy_aliases(module)
        direct = _numpy_direct_imports(module)
        if not aliases and not direct:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_numpy_ctor = (
                isinstance(func, ast.Attribute)
                and func.attr in _CONSTRUCTORS
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ) or (isinstance(func, ast.Name) and func.id in direct)
            if not is_numpy_ctor:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            label = ast.unparse(func)
            yield self.finding(
                module,
                node,
                f"numpy construction '{label}(...)' without an explicit "
                "dtype= lets the element type vary by platform/input",
                fixit="pin dtype= (the flat CSR convention is int32 slots / "
                "int64 offsets)",
            )
