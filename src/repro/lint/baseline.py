"""Checked-in finding baseline: new rules land blocking-on-regression.

A baseline file records the findings a repo has *accepted* (typically
pre-existing advice absorbed when a new rule or a new lint tree lands).
On every run the engine subtracts baselined findings from the report, so
``--strict`` gates only on regressions — while ``--update-baseline``
re-records the current state after an intentional change.

Entries are keyed by :meth:`~repro.lint.findings.Finding.fingerprint`
(``rule, path, message`` — no line numbers), so unrelated edits that
shift a finding a few lines do not churn the file.  Matching is
count-aware: two identical findings in one file need two baseline
entries, and a fixed finding leaves a *stale* entry behind that the CLI
reports (prune with ``--update-baseline``).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Iterable, List, Sequence, Tuple

from .findings import Finding

__all__ = [
    "BASELINE_FILENAME",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

#: Auto-detected baseline filename (looked up in the working directory).
BASELINE_FILENAME = "lint-baseline.json"

_VERSION = 1


def load_baseline(path: str) -> List[Tuple[str, str, str]]:
    """Fingerprints recorded in a baseline file (empty if unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return []
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return []
    out: List[Tuple[str, str, str]] = []
    for entry in payload.get("findings", []):
        try:
            out.append(
                (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            )
        except (KeyError, TypeError):
            continue
    return out


def apply_baseline(
    findings: Sequence[Finding], fingerprints: Iterable[Tuple[str, str, str]]
) -> Tuple[List[Finding], int, int]:
    """Subtract baselined findings.

    Returns ``(kept, suppressed, stale)`` where ``suppressed`` counts the
    findings absorbed by the baseline and ``stale`` the baseline entries
    that matched nothing (fixed findings awaiting a baseline refresh).
    """
    budget = Counter(fingerprints)
    total = sum(budget.values())
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed, total - suppressed


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns the entry count."""
    entries = sorted(
        (
            {"rule": f.rule_id, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    payload = {"version": _VERSION, "findings": entries}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return len(entries)
