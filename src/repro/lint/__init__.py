"""reprolint — AST-based static checks for this repo's internal contracts.

The perf PRs established conventions that ordinary linters cannot see:
``@hot_loop`` kernels must stay allocation-free, telemetry spans must
close on every path, stat keys must come from the registry in
:mod:`repro.core.result`, every oracle-hook driver needs a differential
test, and flat buffers must pin numpy dtypes.  This package enforces
those contracts statically, so a refactor that quietly reintroduces a
per-iteration dict or an unregistered stat key fails ``make lint``
instead of a perf run three PRs later.

Since PR 9 the engine is *whole-project*: it indexes every function
across the run, builds a call graph (direct calls, registry dispatch,
oracle-hook indirection — :mod:`repro.lint.graph`) over a dataflow
substrate (:mod:`repro.lint.dataflow`), and runs four cross-module
rules on top: RL006 transitive hot-loop purity, RL007 fork safety,
RL008 request-context propagation, RL009 decision-log determinism.
Runs are incremental (:mod:`repro.lint.cache`), baseline-aware
(:mod:`repro.lint.baseline`) and can emit SARIF
(:mod:`repro.lint.sarif`).

Layout mirrors :mod:`repro.obs`:

* :mod:`repro.lint.findings` — the :class:`Finding` record and severities;
* :mod:`repro.lint.engine` — discovery, caching pipeline, suppression
  comments (``# reprolint: disable=RL001``), rule driving;
* :mod:`repro.lint.dataflow` / :mod:`repro.lint.graph` — name
  resolution, function index, call graph;
* :mod:`repro.lint.rules` — one module per rule (RL001–RL009);
* :mod:`repro.lint.cache` / :mod:`repro.lint.baseline` /
  :mod:`repro.lint.sarif` — incremental state, accepted findings,
  code-scanning output;
* :mod:`repro.lint.cli` — the ``python -m repro.lint`` / ``repro lint``
  front end.

Programmatic use::

    from repro.lint import lint_paths, lint_source, blocking
    findings = lint_paths(["src", "tests"])
    assert not blocking(findings)
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .cache import LintCache
from .cli import main, run
from .engine import (
    LintModule,
    LintRun,
    blocking,
    iter_python_files,
    lint_modules,
    lint_paths,
    lint_source,
    lint_sources,
    load_module,
    run_lint,
)
from .findings import ADVICE, ERROR, Finding
from .graph import CallGraph, Project, ProjectIndex
from .rules import ALL_RULES, RULES_BY_ID, Rule, default_rules
from .sarif import render_sarif, to_sarif

__all__ = [
    "ADVICE",
    "ALL_RULES",
    "CallGraph",
    "ERROR",
    "Finding",
    "LintCache",
    "LintModule",
    "LintRun",
    "Project",
    "ProjectIndex",
    "RULES_BY_ID",
    "Rule",
    "apply_baseline",
    "blocking",
    "default_rules",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "load_module",
    "main",
    "render_sarif",
    "run",
    "run_lint",
    "to_sarif",
    "write_baseline",
]
