"""reprolint — AST-based static checks for this repo's internal contracts.

The perf PRs established conventions that ordinary linters cannot see:
``@hot_loop`` kernels must stay allocation-free, telemetry spans must
close on every path, stat keys must come from the registry in
:mod:`repro.core.result`, every oracle-hook driver needs a differential
test, and flat buffers must pin numpy dtypes.  This package enforces
those contracts statically, so a refactor that quietly reintroduces a
per-iteration dict or an unregistered stat key fails ``make lint``
instead of a perf run three PRs later.

Layout mirrors :mod:`repro.obs`:

* :mod:`repro.lint.findings` — the :class:`Finding` record and severities;
* :mod:`repro.lint.engine` — file discovery, suppression comments
  (``# reprolint: disable=RL001``), rule driving;
* :mod:`repro.lint.rules` — one module per rule (RL001–RL005);
* :mod:`repro.lint.cli` — the ``python -m repro.lint`` / ``repro lint``
  front end.

Programmatic use::

    from repro.lint import lint_paths, lint_source, blocking
    findings = lint_paths(["src", "tests"])
    assert not blocking(findings)
"""

from .cli import main, run
from .engine import (
    LintModule,
    blocking,
    iter_python_files,
    lint_modules,
    lint_paths,
    lint_source,
    load_module,
)
from .findings import ADVICE, ERROR, Finding
from .rules import ALL_RULES, RULES_BY_ID, Rule, default_rules

__all__ = [
    "ADVICE",
    "ALL_RULES",
    "ERROR",
    "Finding",
    "LintModule",
    "RULES_BY_ID",
    "Rule",
    "blocking",
    "default_rules",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "load_module",
    "main",
    "run",
]
