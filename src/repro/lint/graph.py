"""Project index and call graph for the cross-module rules.

:class:`Project` bundles every parsed module of a lint run and lazily
derives:

* :class:`ProjectIndex` — every function/method and class across the
  project, keyed by qualified name ``dotted.module:Qual.name``
  (``repro.serve.service:SolverService.solve``), plus the module scopes,
  registry dicts and oracle-hook value sets the resolver needs;
* :class:`CallGraph` — caller → callee edges built by resolving every
  call expression through :mod:`repro.lint.dataflow` origins.  Edges
  cover direct calls, methods on ``self``/known instances, registry
  dispatch (``ALGORITHM_BY_NAME[name](g)`` *and* the
  ``_resolve_algorithm(name)(g)`` passthrough shape via per-function
  return summaries), class instantiation (edge to ``__init__``) and
  ``workspace_factory``/``state_factory`` hook indirection (a call
  through a hook parameter fans out to every value the project passes
  for that hook).

Unresolvable callees produce no edges — the graph under-approximates,
which keeps cross-module findings high-precision at the cost of relying
on inline waivers for truly dynamic dispatch.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dataflow import (
    HOOK_PARAMS,
    FunctionScope,
    ModuleScope,
    Origin,
    iter_function_body,
)
from .engine import LintModule

__all__ = ["CallGraph", "FunctionInfo", "Project", "ProjectIndex"]

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Cap on return-summary passthrough resolution (defensive; real chains
#: in this repo are one hop: ``_resolve_algorithm(name)(graph)``).
_MAX_RETURN_DEPTH = 4


class FunctionInfo:
    """One indexed function or method."""

    __slots__ = ("qname", "name", "class_name", "node", "module", "params")

    def __init__(
        self,
        qname: str,
        node: ast.AST,
        module: LintModule,
        class_name: Optional[str] = None,
    ) -> None:
        self.qname = qname
        self.node = node
        self.module = module
        self.class_name = class_name
        self.name = node.name  # type: ignore[attr-defined]
        args = node.args  # type: ignore[attr-defined]
        self.params: List[str] = [
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]

    @property
    def display_name(self) -> str:
        """``Class.method`` or plain ``function`` for messages."""
        return f"{self.class_name}.{self.name}" if self.class_name else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qname!r})"


class ClassInfo:
    """One indexed class: its methods and declared base names."""

    __slots__ = ("qname", "node", "module", "methods", "bases")

    def __init__(self, qname: str, node: ast.ClassDef, module: LintModule) -> None:
        self.qname = qname
        self.node = node
        self.module = module
        self.methods: Dict[str, str] = {}  # method name -> function qname
        self.bases: List[ast.expr] = list(node.bases)


class ProjectIndex:
    """Every function, class and module scope across one lint run."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules = list(modules)
        self.scopes: Dict[str, ModuleScope] = {}
        self.scopes_by_name: Dict[str, ModuleScope] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._module_resolvers: Dict[str, FunctionScope] = {}
        self._symbol_cache: Dict[str, Set[Origin]] = {}
        self._registry_cache: Dict[str, Set[str]] = {}
        self._hook_values: Optional[Dict[str, Set[Origin]]] = None
        for module in modules:
            scope = ModuleScope(module)
            self.scopes[module.path] = scope
            # First module wins on dotted-name collisions (stable: the
            # engine feeds modules in sorted path order).
            self.scopes_by_name.setdefault(scope.name, scope)
            self._index_module(module, scope)

    # ------------------------------------------------------------------
    def _index_module(self, module: LintModule, scope: ModuleScope) -> None:
        for stmt in module.tree.body:
            self._index_statement(stmt, scope, prefix="", class_name=None)

    def _index_statement(
        self,
        stmt: ast.stmt,
        scope: ModuleScope,
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        if isinstance(stmt, _FUNCTION_DEFS):
            qual = f"{prefix}{stmt.name}"
            qname = f"{scope.name}:{qual}"
            info = FunctionInfo(qname, stmt, scope.module, class_name)
            self.functions[qname] = info
            if class_name is not None:
                owner = f"{scope.name}:{prefix.rstrip('.')}"
                if owner in self.classes:
                    self.classes[owner].methods[stmt.name] = qname
            # Nested defs are indexed too (closures called via the
            # enclosing scope resolve by reaching assignment, not here),
            # mostly so decorator factories' inner wrappers are visible.
            for child in stmt.body:
                if isinstance(child, _FUNCTION_DEFS + (ast.ClassDef,)):
                    self._index_statement(child, scope, f"{qual}.", class_name)
        elif isinstance(stmt, ast.ClassDef):
            qual = f"{prefix}{stmt.name}"
            qname = f"{scope.name}:{qual}"
            self.classes[qname] = ClassInfo(qname, stmt, scope.module)
            for child in stmt.body:
                self._index_statement(child, scope, f"{qual}.", class_name=qual)
        elif isinstance(stmt, (ast.If, ast.Try)):
            bodies = [stmt.body, stmt.orelse]
            if isinstance(stmt, ast.Try):
                bodies.extend([h.body for h in stmt.handlers] + [stmt.finalbody])
            for body in bodies:
                for child in body:
                    self._index_statement(child, scope, prefix, class_name)

    # ------------------------------------------------------------------
    # Resolution services (used by FunctionScope via duck typing)
    # ------------------------------------------------------------------
    def module_resolver(self, scope: ModuleScope) -> FunctionScope:
        resolver = self._module_resolvers.get(scope.module.path)
        if resolver is None:
            resolver = FunctionScope(self, scope, fn=None)
            self._module_resolvers[scope.module.path] = resolver
        return resolver

    def resolve_symbol(self, dotted: str, _depth: int = 0) -> Set[Origin]:
        """Resolve an absolute dotted name, following re-export chains."""
        cached = self._symbol_cache.get(dotted)
        if cached is not None:
            return cached
        self._symbol_cache[dotted] = {("unknown",)}  # cycle guard
        result = self._resolve_symbol_uncached(dotted, _depth)
        self._symbol_cache[dotted] = result
        return result

    def _resolve_symbol_uncached(self, dotted: str, depth: int) -> Set[Origin]:
        if depth > 5:
            return {("external", dotted)}
        if dotted in self.scopes_by_name:
            return {("module", dotted)}
        head, _, tail = dotted.rpartition(".")
        scope = self.scopes_by_name.get(head) if head else None
        if scope is None:
            return {("external", dotted)}
        if tail in scope.registries:
            return {("registry", f"{scope.name}:{tail}")}
        if tail in scope.defs:
            node = scope.defs[tail]
            kind = "class" if isinstance(node, ast.ClassDef) else "func"
            return {(kind, f"{scope.name}:{tail}")}
        if tail in scope.imports:
            return self.resolve_symbol(scope.imports[tail], depth + 1)
        if tail in scope.assignments:
            out = set(
                self.module_resolver(scope).origins_of(scope.assignments[tail])
            )
            if tail in scope.mutable_globals:
                out.add(("global_mutable", f"{scope.name}:{tail}"))
            return out
        return {("external", dotted)}

    def lookup_method(self, class_qname: str, attr: str) -> Optional[Origin]:
        """Resolve ``attr`` on a class, walking declared project bases."""
        seen: Set[str] = set()
        queue = deque([class_qname])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            method = cls.methods.get(attr)
            if method is not None:
                return ("func", method)
            scope = self.scopes[cls.module.path]
            resolver = self.module_resolver(scope)
            for base in cls.bases:
                for origin in resolver.origins_of(base):
                    if origin[0] == "class":
                        queue.append(origin[1])
        return None

    def registry_targets(self, registry_qname: str) -> Set[str]:
        """Function qnames a registry dict dispatches to (incl. ``__init__``)."""
        cached = self._registry_cache.get(registry_qname)
        if cached is not None:
            return cached
        targets: Set[str] = set()
        module_name, _, name = registry_qname.rpartition(":")
        scope = self.scopes_by_name.get(module_name)
        if scope is not None and name in scope.registries:
            resolver = self.module_resolver(scope)
            for value in scope.registries[name]:
                for origin in resolver.origins_of(value):
                    if origin[0] == "func":
                        targets.add(origin[1])
                    elif origin[0] == "class":
                        init = self.lookup_method(origin[1], "__init__")
                        if init is not None:
                            targets.add(init[1])
        self._registry_cache[registry_qname] = targets
        return targets

    def hook_value_origins(self, hook: str) -> Set[Origin]:
        """Every value the project passes for an oracle-hook keyword.

        Scans all call sites for ``workspace_factory=...`` /
        ``state_factory=...`` keywords and resolves the values with the
        *module-level* resolver of the calling module — hook values are
        overwhelmingly imported classes or module-level defs, and using
        the module resolver avoids a fixpoint between scope construction
        and hook collection.
        """
        if self._hook_values is None:
            values: Dict[str, Set[Origin]] = {h: set() for h in HOOK_PARAMS}
            for module in self.modules:
                scope = self.scopes[module.path]
                resolver = self.module_resolver(scope)
                for node in ast.walk(module.tree):
                    if not isinstance(node, ast.Call):
                        continue
                    for keyword in node.keywords:
                        if keyword.arg in values:
                            for origin in resolver.origins_of(keyword.value):
                                if origin[0] in ("func", "class"):
                                    values[keyword.arg].add(origin)
            self._hook_values = values
        return self._hook_values.get(hook, set())


class CallGraph:
    """Caller → callee qname edges over a :class:`ProjectIndex`."""

    def __init__(self, edges: Dict[str, Set[str]]) -> None:
        self.edges = edges
        self._return_cache: Dict[str, Set[Origin]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: "Project") -> "CallGraph":
        index = project.index
        builder = cls({})
        for qname, info in index.functions.items():
            builder.edges[qname] = builder._callees_of(project, qname, info)
        return builder

    def _callees_of(
        self, project: "Project", qname: str, info: FunctionInfo
    ) -> Set[str]:
        scope = project.scope(qname)
        targets: Set[str] = set()
        for node in iter_function_body(info.node):
            if not isinstance(node, ast.Call):
                continue
            for origin in scope.origins_of(node.func):
                self._add_edges(project, scope, node, origin, targets, 0)
        targets.discard(qname)
        return targets

    def _add_edges(
        self,
        project: "Project",
        scope: FunctionScope,
        call: ast.Call,
        origin: Origin,
        targets: Set[str],
        depth: int,
    ) -> None:
        index = project.index
        kind = origin[0]
        if kind == "func":
            targets.add(origin[1])
        elif kind == "class":
            init = index.lookup_method(origin[1], "__init__")
            if init is not None:
                targets.add(init[1])
        elif kind in ("registry", "registry_item"):
            targets |= index.registry_targets(origin[1])
        elif kind == "result" and depth < _MAX_RETURN_DEPTH:
            # ``factory = _resolve_algorithm(name)`` / direct
            # ``_resolve_algorithm(name)(graph)``: chase the callee's
            # return summary.
            for returned in self._return_origins(project, origin[1]):
                if returned[0] == "param" and isinstance(call.func, ast.Call):
                    # Map the passthrough parameter back onto the inner
                    # call-site argument and resolve it in *this* scope.
                    arg = _argument_for(
                        index.functions.get(origin[1]), call.func, returned[1]
                    )
                    if arg is not None:
                        for inner in scope.origins_of(arg):
                            self._add_edges(
                                project, scope, call, inner, targets, depth + 1
                            )
                else:
                    self._add_edges(
                        project, scope, call, returned, targets, depth + 1
                    )

    def _return_origins(self, project: "Project", qname: str) -> Set[Origin]:
        cached = self._return_cache.get(qname)
        if cached is not None:
            return cached
        self._return_cache[qname] = set()  # cycle guard
        info = project.index.functions.get(qname)
        origins: Set[Origin] = set()
        if info is not None:
            scope = project.scope(qname)
            for node in iter_function_body(info.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    origins |= scope.origins_of(node.value)
        self._return_cache[qname] = origins
        return origins

    # ------------------------------------------------------------------
    def reachable_with_parents(
        self, roots: Iterable[str]
    ) -> Tuple[Set[str], Dict[str, str]]:
        """BFS closure of ``roots`` plus a parent map for chain rendering."""
        parents: Dict[str, str] = {}
        seen: Set[str] = set()
        queue = deque()
        for root in roots:
            if root not in seen:
                seen.add(root)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in seen:
                    seen.add(callee)
                    parents[callee] = current
                    queue.append(callee)
        return seen, parents

    @staticmethod
    def chain(parents: Dict[str, str], qname: str) -> List[str]:
        """Root → … → qname path recovered from a BFS parent map."""
        path = [qname]
        while path[-1] in parents:
            path.append(parents[path[-1]])
        path.reverse()
        return path


def _argument_for(
    info: Optional[FunctionInfo], call: ast.Call, param: str
) -> Optional[ast.expr]:
    """The call-site expression bound to ``param`` at ``call``."""
    for keyword in call.keywords:
        if keyword.arg == param:
            return keyword.value
    if info is None:
        return None
    params = info.params
    if params and params[0] == "self":
        params = params[1:]
    try:
        position = params.index(param)
    except ValueError:
        return None
    if position < len(call.args):
        arg = call.args[position]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


class Project:
    """The whole-project view handed to ``Rule.check_graph``."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules = list(modules)
        self._index: Optional[ProjectIndex] = None
        self._graph: Optional[CallGraph] = None
        self._scopes: Dict[str, FunctionScope] = {}

    @property
    def index(self) -> ProjectIndex:
        if self._index is None:
            self._index = ProjectIndex(self.modules)
        return self._index

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph.build(self)
        return self._graph

    def scope(self, qname: str) -> FunctionScope:
        """The (cached) :class:`FunctionScope` for an indexed function."""
        scope = self._scopes.get(qname)
        if scope is None:
            info = self.index.functions[qname]
            module_scope = self.index.scopes[info.module.path]
            class_qname = (
                f"{module_scope.name}:{info.class_name}" if info.class_name else None
            )
            scope = FunctionScope(
                self.index, module_scope, info.node, class_qname
            )
            self._scopes[qname] = scope
        return scope
