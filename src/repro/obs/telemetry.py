"""Telemetry primitives: spans, counters, timers, and the process flag.

The paper's claims are per-phase — reducing vs. peeling work ratios, the
Theorem-6.1 certificate, the 2m/4m/6m space envelopes — so the drivers need
a way to say *where* time and work went without paying for it when nobody
is looking.  The design rules:

* **one global check per driver run.**  Drivers call :func:`get_telemetry`
  exactly once at entry; a ``None`` return is the entire disabled-mode cost.
  No per-reduction branches, no per-event callbacks — the flat hot loops
  stay flat.
* **spans are phase-level**, not event-level.  A span covers a contiguous
  phase (setup / reduce / replay / extend / swap-scan …); the reducing vs.
  peeling breakdown comes from snapshotting the decision log's rule
  counters at the phase boundary, which is one dict copy per phase.
* **timers aggregate repeated phases.**  ARW's per-iteration swap scans
  would explode into thousands of spans; a timer keeps ``(count, total)``
  per name instead.

Everything is in-memory until :meth:`Telemetry.to_records` serialises it
for the JSON-lines emitter (:mod:`repro.obs.trace_io`).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Telemetry",
    "enable",
    "disable",
    "get_telemetry",
    "telemetry_session",
    "phase",
]


class Span:
    """One timed phase.  ``meta`` stays mutable inside the ``with`` block so
    drivers can attach counter snapshots at the phase boundary."""

    __slots__ = ("name", "start", "wall", "meta", "pid", "depth")

    def __init__(self, name: str, meta: Dict[str, object]) -> None:
        self.name = name
        self.meta = meta
        self.start = 0.0
        self.wall = 0.0
        self.pid = os.getpid()
        self.depth = 0

    def to_record(self) -> Dict[str, object]:
        """The JSON-serialisable trace record for this span."""
        record: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "wall": self.wall,
            "pid": self.pid,
            "depth": self.depth,
        }
        if self.meta:
            record["meta"] = self.meta
        return record

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.wall * 1e3:.2f}ms depth={self.depth}>"


class _NoopSpan:
    """Stand-in yielded by :func:`phase` when telemetry is disabled; absorbs
    ``meta`` writes so drivers keep a single code path."""

    __slots__ = ("meta",)

    def __init__(self) -> None:
        self.meta: Dict[str, object] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


class Telemetry:
    """In-memory telemetry sink for one process (or one worker).

    Attributes
    ----------
    label:
        Free-form run label (worker telemetries use ``component-<i>``).
    spans / counters / timers / profiles / extra:
        The collected primitives; ``extra`` holds free-form records such as
        memory probes and adopted worker traces.
    context:
        Fields stamped onto every span created while set (see
        :meth:`scoped`) — the parallel driver uses it for per-component
        attribution of inline solves.
    """

    def __init__(self, label: str = "", context: Optional[Dict[str, object]] = None) -> None:
        self.label = label
        self.pid = os.getpid()
        self.origin = time.perf_counter()
        self.started_at = time.time()
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, List[float]] = {}  # name -> [count, total]
        self.profiles: List[Dict[str, object]] = []
        self.extra: List[Dict[str, object]] = []
        self.context: Dict[str, object] = dict(context or {})
        self._depth = 0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta):
        """Record a phase span around the ``with`` body.

        The span is appended on exit (even if the body raises, so partial
        runs still leave a trace).  Nested spans record their depth; the
        summaries sum depth-0 spans only, keeping nested totals honest.
        """
        if self.context:
            merged = dict(self.context)
            merged.update(meta)
            meta = merged
        span = Span(name, meta)
        span.depth = self._depth
        self._depth += 1
        t0 = time.perf_counter()
        try:
            yield span
        finally:
            now = time.perf_counter()
            span.start = t0 - self.origin
            span.wall = now - t0
            span.pid = os.getpid()
            self._depth -= 1
            self.spans.append(span)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump the named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_counters(self, stats: Dict[str, int]) -> None:
        """Merge a counter dict (e.g. a decision log's rule stats)."""
        counters = self.counters
        for key, amount in stats.items():
            counters[key] = counters.get(key, 0) + amount

    def timer(self, name: str, seconds: float) -> None:
        """Accumulate one observation into the named aggregate timer."""
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [1, seconds]
        else:
            cell[0] += 1
            cell[1] += seconds

    @contextmanager
    def timed(self, name: str):
        """Context-manager sugar over :meth:`timer`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timer(name, time.perf_counter() - t0)

    def profile(self, algorithm: str, graph: str) -> List[tuple]:
        """Open a peeling-profile record; returns the mutable sample list.

        Samples are ``(events, live_vertices, live_edges, current_bound)``
        tuples appended by the instrumented workspaces
        (:mod:`repro.obs.instrument`).
        """
        samples: List[tuple] = []
        record: Dict[str, object] = {
            "type": "profile",
            "algorithm": algorithm,
            "graph": graph,
            "pid": os.getpid(),
            "samples": samples,
        }
        if self.context:
            record.update(
                (k, v) for k, v in self.context.items() if k not in record
            )
        self.profiles.append(record)
        return samples

    def record(self, record: Dict[str, object]) -> None:
        """Append a free-form record (memory probes, backend picks …).

        Like spans and profiles, the record is stamped with the active
        :meth:`scoped` context fields (request id, tenant, component) —
        keys the record already carries win.
        """
        if self.context:
            record.update(
                (k, v) for k, v in self.context.items() if k not in record
            )
        self.extra.append(record)

    def adopt(self, records: Iterable[Dict[str, object]]) -> None:
        """Merge records collected elsewhere (e.g. a worker process).

        ``meta`` records are kept — they carry the worker's pid and label —
        so a merged trace still shows which process produced what.
        """
        for record in records:
            self.extra.append(record)

    # ------------------------------------------------------------------
    # Context stamping
    # ------------------------------------------------------------------
    @contextmanager
    def scoped(self, **fields):
        """Stamp ``fields`` onto every span/profile opened in the block."""
        previous = self.context
        merged = dict(previous)
        merged.update(fields)
        self.context = merged
        try:
            yield
        finally:
            self.context = previous

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, object]]:
        """Every collected primitive as JSON-serialisable trace records.

        The first record is the run ``meta`` line; counters and timers are
        emitted as one record each so small traces stay small.
        """
        records: List[Dict[str, object]] = [
            {
                "type": "meta",
                "label": self.label,
                "pid": self.pid,
                "started_at": self.started_at,
            }
        ]
        records.extend(span.to_record() for span in self.spans)
        if self.counters:
            records.append(
                {"type": "counters", "pid": self.pid, "values": dict(self.counters)}
            )
        for name, (count, total) in sorted(self.timers.items()):
            records.append(
                {
                    "type": "timer",
                    "name": name,
                    "pid": self.pid,
                    "count": count,
                    "total": total,
                }
            )
        records.extend(self.profiles)
        records.extend(self.extra)
        return records

    def span_total(self, depth: int = 0) -> float:
        """Sum of wall seconds over spans at the given nesting depth."""
        return sum(span.wall for span in self.spans if span.depth == depth)

    def __repr__(self) -> str:
        return (
            f"<Telemetry label={self.label!r} spans={len(self.spans)} "
            f"counters={len(self.counters)} profiles={len(self.profiles)}>"
        )


# ---------------------------------------------------------------------------
# Process-global flag
# ---------------------------------------------------------------------------
_ACTIVE: Optional[Telemetry] = None


def enable(label: str = "", context: Optional[Dict[str, object]] = None) -> Telemetry:
    """Turn telemetry on for this process; returns the active sink.

    Re-enabling replaces the active sink (worker processes do this to start
    from a clean slate even under the ``fork`` start method).
    """
    global _ACTIVE
    _ACTIVE = Telemetry(label=label, context=context)
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Turn telemetry off; returns the sink that was active (if any)."""
    global _ACTIVE
    active, _ACTIVE = _ACTIVE, None
    return active


def get_telemetry() -> Optional[Telemetry]:
    """The active sink, or ``None`` when telemetry is off.

    This is the one check drivers make per run — bind the result to a local
    and branch on it at phase boundaries only.
    """
    return _ACTIVE


@contextmanager
def telemetry_session(label: str = "", context: Optional[Dict[str, object]] = None):
    """Enable telemetry for the block; yields the sink, disables on exit."""
    telemetry = enable(label=label, context=context)
    try:
        yield telemetry
    finally:
        if _ACTIVE is telemetry:
            disable()


def phase(telemetry: Optional[Telemetry], name: str, **meta):
    """A span when telemetry is on, a no-op context otherwise.

    Lets drivers keep one code path: ``with phase(tele, "reduce") as sp``
    costs a tiny throwaway object when disabled and a real span when
    enabled.  Only for phase boundaries — never call this per event.
    """
    if telemetry is None:
        return _NoopSpan()
    return telemetry.span(name, **meta)
