"""Optional tracemalloc probe: peak bytes vs. the paper's Table-1 budgets.

Table 1 prices each algorithm's edge storage in machine words — 2m for
BDOne/LinearTime, 4m for NearLinear, 6m for BDTwo.  The structural model
lives in :func:`repro.analysis.memory.model_words`; this module measures the
*interpreter's* actual peak heap around a run (via ``tracemalloc``) and
reports both numbers side by side, so a trace can say "peak 6.1 MB against
a 2m + O(n) = 3.9 MB-word envelope".

The probe is strictly opt-in: ``tracemalloc`` slows allocation-heavy code
by an integer factor, so nothing in the library starts it implicitly —
drivers never touch this module; the CLI and the bench harness wrap whole
runs in it when asked.
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, Optional

from .telemetry import Telemetry

__all__ = ["MemoryProbe", "probe_record"]

_WORD_BYTES = 4  # the paper's word = one 32-bit integer (CSR entries)


class MemoryProbe:
    """Context manager measuring peak traced heap bytes over its block.

    Nesting-safe *without side effects on the outer trace*: when
    ``tracemalloc`` is already tracing (an enclosing probe, or a bench run
    that started tracing itself), the probe never calls
    ``tracemalloc.reset_peak()`` — resetting would silently erase the
    enclosing scope's peak accounting.  Instead it snapshots
    ``(current, peak)`` at entry and derives this block's peak at exit:

    * if the global peak grew during the block, that new peak *happened
      here*, so it is exact;
    * otherwise the block never exceeded the pre-existing peak, and the
      probe reports the larger of the entry/exit ``current`` readings — a
      lower bound that is what actually remained allocated, which is the
      honest answer available without clobbering the outer trace.
    """

    __slots__ = ("peak_bytes", "_started_here", "_entry_current", "_entry_peak")

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._started_here = False
        self._entry_current = 0
        self._entry_peak = 0

    def __enter__(self) -> "MemoryProbe":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
            self._entry_current = 0
            self._entry_peak = 0
        else:
            self._entry_current, self._entry_peak = tracemalloc.get_traced_memory()
        return self

    def __exit__(self, *exc) -> bool:
        current, peak = tracemalloc.get_traced_memory()
        if self._started_here:
            self.peak_bytes = peak
            tracemalloc.stop()
        elif peak > self._entry_peak:
            self.peak_bytes = peak
        else:
            self.peak_bytes = max(current, self._entry_current)
        return False


def probe_record(
    probe: MemoryProbe,
    algorithm: str,
    graph,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, object]:
    """Build (and optionally record) the ``memory`` trace record.

    Pairs the measured peak with the Table-1 structural budget when the
    algorithm has one; algorithms outside the table (baselines, ARW
    variants) report the peak alone.
    """
    record: Dict[str, object] = {
        "type": "memory",
        "algorithm": algorithm,
        "graph": graph.name,
        "n": graph.n,
        "m": graph.m,
        "peak_bytes": probe.peak_bytes,
    }
    try:
        from ..analysis.memory import model_words

        words = model_words(algorithm, graph)
        record["budget_words"] = words
        record["budget_bytes"] = words * _WORD_BYTES
        if words:
            record["peak_over_budget"] = probe.peak_bytes / (words * _WORD_BYTES)
    except Exception:
        pass  # no Table-1 row for this algorithm
    if telemetry is not None:
        telemetry.record(record)
    return record
