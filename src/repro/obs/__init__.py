"""Observability subsystem: phase spans, peeling profiles, trace merging.

Built for near-zero overhead when off: algorithms ask
:func:`get_telemetry` once per run and take their normal (flat) hot paths
when it returns ``None``.  When a sink is active they emit *phase-level*
spans (setup / reduce / replay / extend / swap-scan …) with rule-counter
snapshots at the boundaries, record sampled peeling profiles through the
``workspace_factory`` hook seam, and the parallel per-component driver
merges per-worker trace files into one attributed run report.

Entry points::

    from repro.obs import telemetry_session, write_trace, render_report

    with telemetry_session("my-run") as tele:
        result = linear_time(graph)
    write_trace("trace.jsonl", tele.to_records())
    print(render_report(tele.to_records()))

or from the shell::

    python -m repro solve graph.metis --algorithm LinearTime \\
        --telemetry trace.jsonl
    python -m repro obs report trace.jsonl
"""

from .instrument import (
    PROFILE_TARGET_SAMPLES,
    finish_profile,
    instrumented_factory,
    traced_replay,
)
from .memory import MemoryProbe, probe_record
from .metrics import (
    METRIC_KEYS,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_session,
    parse_prometheus,
)
from .report import profile_is_monotone, render_report, summarize
from .telemetry import (
    Span,
    Telemetry,
    disable,
    enable,
    get_telemetry,
    phase,
    telemetry_session,
)
from .trace_io import collect_worker_traces, load_trace, merge_traces, write_trace
from .watch import build_trajectory, discover_baselines, render_watch_report

__all__ = [
    "METRIC_KEYS",
    "PROFILE_TARGET_SAMPLES",
    "Histogram",
    "MemoryProbe",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "build_trajectory",
    "collect_worker_traces",
    "disable",
    "disable_metrics",
    "discover_baselines",
    "enable",
    "enable_metrics",
    "finish_profile",
    "get_metrics",
    "get_telemetry",
    "instrumented_factory",
    "load_trace",
    "merge_traces",
    "metrics_session",
    "parse_prometheus",
    "phase",
    "probe_record",
    "profile_is_monotone",
    "render_report",
    "render_watch_report",
    "summarize",
    "telemetry_session",
    "traced_replay",
    "write_trace",
]
