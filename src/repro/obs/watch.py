"""Bench-trajectory watchdog: gated tracks vs. their all-time best.

The committed ``BENCH_PR<N>.json`` baselines are a *trajectory*: one
snapshot of the perf suite per landed PR.  The CI regression gate
(:mod:`repro.perf.bench_regression` ``--compare``) only looks at the single
most recent baseline, so a slow leak — each PR a little worse than the
last, none of them over the per-PR tolerance — never trips it.  This
module closes that hole: it reconstructs every gated track's wall-time
series across all committed baselines and flags any track whose *latest*
wall sits more than ``tolerance``× above the trajectory's best.

Usage::

    python -m repro obs watch                     # report over ./BENCH_PR*.json
    python -m repro obs watch --strict            # exit 1 on any flag
    python -m repro obs watch --json --out w.json # machine-readable

The same trajectory is embedded into fresh bench reports via
``python -m repro.perf.bench_regression --watch DIR`` (schema 7).
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Tuple

__all__ = [
    "discover_baselines",
    "build_trajectory",
    "render_watch_report",
    "main",
]

#: Default headroom over the trajectory best before a track is flagged.
#: Matches the CI gate's per-PR ``--max-regression`` default so the two
#: checks share one notion of "too slow".
DEFAULT_TOLERANCE = 2.0

_BASELINE_PATTERN = re.compile(r"^BENCH_PR(\d+)\.json$")


def _gated_tracks() -> Dict[str, Tuple[str, str]]:
    # Imported lazily: bench_regression imports this module for --watch,
    # so a module-level import here would be circular.
    from ..perf.bench_regression import GATED_TRACKS

    return GATED_TRACKS


def discover_baselines(
    directory: str = ".",
) -> List[Tuple[int, str, Dict[str, object]]]:
    """Load every ``BENCH_PR<N>.json`` under ``directory``, ordered by PR.

    Returns ``(pr_number, path, report)`` triples.  Files that fail to
    parse raise — a corrupted committed baseline should fail loudly, not
    silently shorten the trajectory.
    """
    found: List[Tuple[int, str]] = []
    for name in os.listdir(directory):
        match = _BASELINE_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    found.sort()
    baselines: List[Tuple[int, str, Dict[str, object]]] = []
    for pr, path in found:
        with open(path, "r", encoding="utf-8") as handle:
            baselines.append((pr, path, json.load(handle)))
    return baselines


def build_trajectory(
    baselines: List[Tuple[int, str, Dict[str, object]]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, object]:
    """Per-track wall-time series over the baselines, with regression flags.

    For every :data:`~repro.perf.bench_regression.GATED_TRACKS` entry and
    every graph, the series holds one ``{"pr", "wall"}`` point per
    baseline that recorded that track (older schemas simply lack the newer
    tracks — the series starts where the track was introduced).  A track
    is ``regressed`` when its latest wall exceeds ``tolerance`` times the
    series' best (fastest) wall; those flags are also collected as
    human-readable strings under ``"regressions"``.
    """
    tracks: Dict[str, Dict[str, Dict[str, object]]] = {}
    regressions: List[str] = []
    for track, (record_key, field) in sorted(_gated_tracks().items()):
        per_graph: Dict[str, Dict[str, object]] = {}
        for pr, _path, report in baselines:
            timings = report.get("timings", {})
            if not isinstance(timings, dict):
                continue
            for gname, records in timings.items():
                record = records.get(record_key) if isinstance(records, dict) else None
                if not isinstance(record, dict) or field not in record:
                    continue
                wall = float(record[field])
                if wall <= 0:
                    continue
                cell = per_graph.setdefault(str(gname), {"series": []})
                cell["series"].append({"pr": pr, "wall": wall})
        for gname, cell in per_graph.items():
            series: List[Dict[str, object]] = cell["series"]  # type: ignore[assignment]
            best = min(series, key=lambda point: point["wall"])
            latest = max(series, key=lambda point: point["pr"])
            ratio = float(latest["wall"]) / float(best["wall"])
            regressed = ratio > tolerance
            cell["best"] = dict(best)
            cell["latest"] = dict(latest)
            cell["ratio_vs_best"] = ratio
            cell["regressed"] = regressed
            if regressed:
                regressions.append(
                    f"{track} on {gname}: PR{latest['pr']} wall "
                    f"{float(latest['wall']):.4f}s is {ratio:.2f}x the trajectory "
                    f"best {float(best['wall']):.4f}s (PR{best['pr']}; "
                    f"tolerance {tolerance:.2f}x)"
                )
        if per_graph:
            tracks[track] = per_graph
    return {
        "baselines": [
            {"pr": pr, "path": path, "schema": report.get("schema")}
            for pr, path, report in baselines
        ],
        "tolerance": tolerance,
        "tracks": tracks,
        "regressions": regressions,
    }


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_watch_report(trajectory: Dict[str, object]) -> str:
    """Human-readable text view of a :func:`build_trajectory` result."""
    lines: List[str] = []
    baselines = trajectory.get("baselines", [])
    prs = ", ".join(f"PR{cell['pr']}" for cell in baselines)  # type: ignore[index]
    lines.append(
        f"bench trajectory over {len(baselines)} baselines ({prs}); "
        f"tolerance {float(trajectory['tolerance']):.2f}x"  # type: ignore[arg-type]
    )
    tracks: Dict[str, Dict[str, Dict[str, object]]] = trajectory.get("tracks", {})  # type: ignore[assignment]
    for track, per_graph in sorted(tracks.items()):
        lines.append(f"{track}:")
        for gname, cell in sorted(per_graph.items()):
            best = cell["best"]
            latest = cell["latest"]
            flag = "  REGRESSED" if cell["regressed"] else ""
            lines.append(
                f"  {gname}: latest PR{latest['pr']} "  # type: ignore[index]
                f"{_format_seconds(float(latest['wall']))} vs best "  # type: ignore[index]
                f"PR{best['pr']} {_format_seconds(float(best['wall']))} "  # type: ignore[index]
                f"({float(cell['ratio_vs_best']):.2f}x, "
                f"{len(cell['series'])} points){flag}"  # type: ignore[arg-type]
            )
    regressions: List[str] = trajectory.get("regressions", [])  # type: ignore[assignment]
    if regressions:
        lines.append(f"{len(regressions)} trajectory regression(s):")
        lines.extend(f"  {message}" for message in regressions)
    else:
        lines.append("no trajectory regressions")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro obs watch`` — flag gated tracks that drifted from their best."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro obs watch", description=__doc__
    )
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding the committed BENCH_PR*.json baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="flag when latest wall exceeds trajectory best by this ratio",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the trajectory as JSON"
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH", help="also write the output to PATH"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any track regressed beyond tolerance",
    )
    args = parser.parse_args(argv)

    baselines = discover_baselines(args.dir)
    if not baselines:
        print(f"no BENCH_PR*.json baselines found under {args.dir!r}")
        return 1
    trajectory = build_trajectory(baselines, tolerance=args.tolerance)
    if args.json:
        output = json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    else:
        output = render_watch_report(trajectory) + "\n"
    print(output, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(output)
    if args.strict and trajectory["regressions"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
