"""Process-global metrics: counters, gauges, log-bucketed histograms.

Telemetry (:mod:`repro.obs.telemetry`) answers "where did *this run* spend
its time"; metrics answer the production question — "what are the request
rates, hit rates, and latency quantiles of this process *right now*".  The
serving layer (:mod:`repro.serve`) publishes into a
:class:`MetricsRegistry`, and two exposition formats get the numbers out:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text format every
  scraper speaks (histograms as cumulative ``_bucket{le=...}`` series plus
  precomputed ``_p50``/``_p90``/``_p99`` gauges);
* :meth:`MetricsRegistry.to_records` — JSON-serialisable records in the
  same shape the JSONL trace files use, so a metrics snapshot can ride in
  a telemetry trace via :func:`repro.obs.trace_io.write_trace`.

The design rules mirror the telemetry ones:

* **one registry check per request.**  Callers bind
  :func:`get_metrics` once per request (never per loop iteration); a
  ``None`` return is the entire disabled-mode cost.  Solver hot loops never
  see this module at all — only request-level code publishes metrics.
* **names come from the registry.**  Every metric name is a ``METRIC_*``
  constant registered in :data:`METRIC_KEYS`; the registry rejects unknown
  names at runtime and reprolint RL003 rejects unregistered literals
  statically, so dashboards and alerts never chase a renamed series.
* **histograms are log-bucketed.**  Latencies span six orders of
  magnitude; geometric buckets (factor 2 from 1µs up) keep the quantile
  error bounded by the bucket ratio at every scale with a few dozen
  integers of state.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRIC_KEYS",
    "METRIC_SERVE_REQUESTS",
    "METRIC_SERVE_REQUEST_SECONDS",
    "METRIC_SERVE_SOLVER_SECONDS",
    "METRIC_SERVE_CACHE_HITS",
    "METRIC_SERVE_CACHE_MISSES",
    "METRIC_SERVE_CACHE_EVICTIONS",
    "METRIC_SERVE_CACHE_ENTRIES",
    "METRIC_SERVE_CACHE_SHARED_HITS",
    "METRIC_SERVE_GRAPHS",
    "METRIC_SERVE_MUTATIONS",
    "METRIC_SERVE_REPAIRS",
    "METRIC_SERVE_REPAIR_VERTICES",
    "METRIC_SERVE_REPAIR_COMPONENTS",
    "METRIC_SERVE_FULL_RESOLVES",
    "METRIC_SERVE_STALE_RETURNS",
    "METRIC_AUTO_BACKEND_PICKS",
    "METRIC_FRONTEND_REQUESTS",
    "METRIC_FRONTEND_REQUEST_SECONDS",
    "METRIC_FRONTEND_QUEUE_DEPTH",
    "METRIC_FRONTEND_SHED",
    "METRIC_FRONTEND_BATCHES",
    "METRIC_FRONTEND_BATCH_SIZE",
    "METRIC_FRONTEND_COALESCED",
    "METRIC_FRONTEND_PROTOCOL_ERRORS",
    "METRIC_FRONTEND_CONNECTIONS",
    "MetricsRegistry",
    "Histogram",
    "enable_metrics",
    "disable_metrics",
    "get_metrics",
    "metrics_session",
    "parse_prometheus",
]

# ---------------------------------------------------------------------------
# Metric-name registry (one canonical spelling per series; RL003-checked)
# ---------------------------------------------------------------------------
#: Requests answered by the serving layer, labelled ``op`` (solve /
#: upper_bound / mutate / register) and ``source`` (cache / cold / repair /
#: stale — empty for non-query ops).
METRIC_SERVE_REQUESTS = "repro_serve_requests_total"
#: End-to-end request latency histogram, labelled ``op``.
METRIC_SERVE_REQUEST_SECONDS = "repro_serve_request_seconds"
#: Solver-only seconds inside cold solves and repairs, labelled ``op``.
METRIC_SERVE_SOLVER_SECONDS = "repro_serve_solver_seconds"
METRIC_SERVE_CACHE_HITS = "repro_serve_cache_hits_total"
METRIC_SERVE_CACHE_MISSES = "repro_serve_cache_misses_total"
METRIC_SERVE_CACHE_EVICTIONS = "repro_serve_cache_evictions_total"
METRIC_SERVE_CACHE_ENTRIES = "repro_serve_cache_entries"
METRIC_SERVE_GRAPHS = "repro_serve_graphs"
METRIC_SERVE_MUTATIONS = "repro_serve_mutations_total"
METRIC_SERVE_REPAIRS = "repro_serve_repairs_total"
METRIC_SERVE_REPAIR_VERTICES = "repro_serve_repair_vertices_total"
METRIC_SERVE_REPAIR_COMPONENTS = "repro_serve_repair_components_total"
METRIC_SERVE_FULL_RESOLVES = "repro_serve_full_resolves_total"
#: Timeout degradations: the budget ran out and a patched stale answer shipped.
METRIC_SERVE_STALE_RETURNS = "repro_serve_stale_returns_total"
#: The ``auto`` dispatcher's per-solve decision, labelled ``backend``
#: (flat / vectorized) and ``family`` (bdone / linear_time / near_linear).
METRIC_AUTO_BACKEND_PICKS = "repro_auto_backend_picks_total"
#: Kernel-cache lookups that missed locally but hit the fleet-shared tier
#: (a graph kernelized by one shard worker answering on another).
METRIC_SERVE_CACHE_SHARED_HITS = "repro_serve_cache_shared_hits_total"
#: Requests admitted by the async front-end, labelled ``op`` and ``shard``.
METRIC_FRONTEND_REQUESTS = "repro_frontend_requests_total"
#: End-to-end front-end latency (admission to response), labelled ``op``.
METRIC_FRONTEND_REQUEST_SECONDS = "repro_frontend_request_seconds"
#: Live admission-queue depth per shard (gauge, labelled ``shard``).
METRIC_FRONTEND_QUEUE_DEPTH = "repro_frontend_queue_depth"
#: Requests shed by admission control, labelled ``shard`` and ``reason``
#: (``queue_full`` / ``deadline``).
METRIC_FRONTEND_SHED = "repro_frontend_shed_total"
#: Dispatched worker batches per shard.
METRIC_FRONTEND_BATCHES = "repro_frontend_batches_total"
#: Batch-size distribution (requests per dispatched batch).
METRIC_FRONTEND_BATCH_SIZE = "repro_frontend_batch_size"
#: Solve requests answered by a micro-batch leader's solve (followers).
METRIC_FRONTEND_COALESCED = "repro_frontend_coalesced_total"
#: Malformed / oversized / undecodable request lines.
METRIC_FRONTEND_PROTOCOL_ERRORS = "repro_frontend_protocol_errors_total"
#: Open client connections (gauge).
METRIC_FRONTEND_CONNECTIONS = "repro_frontend_connections"

#: The full metric-name registry reprolint RL003 checks write sites against.
METRIC_KEYS = frozenset(
    {
        METRIC_SERVE_REQUESTS,
        METRIC_SERVE_REQUEST_SECONDS,
        METRIC_SERVE_SOLVER_SECONDS,
        METRIC_SERVE_CACHE_HITS,
        METRIC_SERVE_CACHE_MISSES,
        METRIC_SERVE_CACHE_EVICTIONS,
        METRIC_SERVE_CACHE_ENTRIES,
        METRIC_SERVE_CACHE_SHARED_HITS,
        METRIC_SERVE_GRAPHS,
        METRIC_SERVE_MUTATIONS,
        METRIC_SERVE_REPAIRS,
        METRIC_SERVE_REPAIR_VERTICES,
        METRIC_SERVE_REPAIR_COMPONENTS,
        METRIC_SERVE_FULL_RESOLVES,
        METRIC_SERVE_STALE_RETURNS,
        METRIC_AUTO_BACKEND_PICKS,
        METRIC_FRONTEND_REQUESTS,
        METRIC_FRONTEND_REQUEST_SECONDS,
        METRIC_FRONTEND_QUEUE_DEPTH,
        METRIC_FRONTEND_SHED,
        METRIC_FRONTEND_BATCHES,
        METRIC_FRONTEND_BATCH_SIZE,
        METRIC_FRONTEND_COALESCED,
        METRIC_FRONTEND_PROTOCOL_ERRORS,
        METRIC_FRONTEND_CONNECTIONS,
    }
)

#: Histogram bucket geometry: upper bounds ``_BUCKET_START * 2**i`` for
#: ``i < _BUCKET_COUNT``, then +Inf.  1µs … ~134s covers every latency the
#: service can legally produce; quantile error is bounded by the factor-2
#: bucket ratio.
_BUCKET_START = 1e-6
_BUCKET_GROWTH = 2.0
_BUCKET_COUNT = 28

#: The quantiles precomputed in both exposition formats.
QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in items)
    return "{" + body + "}"


class Histogram:
    """One log-bucketed latency distribution (one label set of a series).

    State is ``_BUCKET_COUNT + 1`` integers (the last is the +Inf overflow)
    plus ``count`` / ``total`` / ``minimum`` / ``maximum``; observations are
    an ``int(log2)`` and an increment — cheap enough for per-request use.
    """

    __slots__ = ("buckets", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.buckets = [0] * (_BUCKET_COUNT + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        value = max(0.0, float(value))
        if value <= _BUCKET_START:
            index = 0
        else:
            index = int(math.log(value / _BUCKET_START, _BUCKET_GROWTH)) + 1
            if index > _BUCKET_COUNT:
                index = _BUCKET_COUNT
        self.buckets[index] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @staticmethod
    def bound(index: int) -> float:
        """The inclusive upper bound of bucket ``index`` (+Inf for the last)."""
        if index >= _BUCKET_COUNT:
            return math.inf
        return _BUCKET_START * _BUCKET_GROWTH**index

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the buckets.

        Walks the cumulative counts to the target rank and interpolates
        geometrically inside the winning bucket; the estimate is exact to
        within one bucket ratio (factor 2), clamped to the observed
        min/max so tiny samples stay sensible.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            if bucket == 0:
                continue
            if seen + bucket >= target:
                upper = self.bound(index)
                lower = _BUCKET_START * _BUCKET_GROWTH ** (index - 1) if index else 0.0
                if math.isinf(upper):
                    return self.maximum
                fraction = (target - seen) / bucket
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
            seen += bucket
        return self.maximum

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"<Histogram n={self.count} mean={self.mean:.6f}>"


class MetricsRegistry:
    """In-memory metrics store for one process.

    Series are keyed by ``(name, labels)``; ``name`` must come from
    :data:`METRIC_KEYS` (unknown names raise ``KeyError`` — the runtime
    twin of the RL003 static check).  Counters and gauges are floats,
    histograms :class:`Histogram` objects.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._counters: Dict[str, Dict[_LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[_LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[_LabelKey, Histogram]] = {}
        # Writes are read-modify-write sequences; the serving layer hits one
        # registry from dispatcher threads and thread-mode shard workers
        # concurrently, so each write takes this (uncontended-cheap) lock.
        self._write_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Write API
    # ------------------------------------------------------------------
    @staticmethod
    def _check(name: str) -> str:
        if name not in METRIC_KEYS:
            raise KeyError(
                f"metric name {name!r} is not registered in "
                "repro.obs.metrics.METRIC_KEYS; add a METRIC_* constant"
            )
        return name

    def inc(self, name: str, amount: float = 1, **labels: str) -> None:
        """Add ``amount`` to the counter series ``name`` at ``labels``."""
        series = self._counters.setdefault(self._check(name), {})
        key = _label_key(labels)
        with self._write_lock:
            series[key] = series.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set the gauge series ``name`` at ``labels`` to ``value``."""
        series = self._gauges.setdefault(self._check(name), {})
        with self._write_lock:
            series[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into the histogram series ``name``."""
        series = self._histograms.setdefault(self._check(name), {})
        key = _label_key(labels)
        with self._write_lock:
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> float:
        """Counter/gauge value at exactly ``labels`` (0.0 when unset)."""
        key = _label_key(labels)
        for table in (self._counters, self._gauges):
            series = table.get(name)
            if series is not None and key in series:
                return series[key]
        return 0.0

    def total(self, name: str) -> float:
        """Counter value summed over every label set of the series."""
        return sum(self._counters.get(name, {}).values())

    def histogram(self, name: str, **labels: str) -> Optional[Histogram]:
        """The histogram at exactly ``labels``, or ``None``."""
        return self._histograms.get(name, {}).get(_label_key(labels))

    def quantile(self, name: str, q: float, **labels: str) -> float:
        """Quantile estimate of a histogram series (0.0 when empty)."""
        histogram = self.histogram(name, **labels)
        return histogram.quantile(q) if histogram is not None else 0.0

    def counter_series(self, name: str) -> Dict[_LabelKey, float]:
        """Every label set of a counter series (a copy)."""
        return dict(self._counters.get(name, {}))

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Counters and gauges are one sample per label set; histograms emit
        cumulative ``_bucket{le=...}`` series, ``_sum``/``_count``, and
        derived ``_p50``/``_p90``/``_p99`` gauges (quantiles precomputed
        here because the scrape side of a log-bucketed histogram cannot
        beat the source's estimate).
        """
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(self._counters[name].items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(self._gauges):
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(self._gauges[name].items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(self._histograms):
            lines.append(f"# TYPE {name} histogram")
            for key, histogram in sorted(self._histograms[name].items()):
                cumulative = 0
                for index, bucket in enumerate(histogram.buckets):
                    cumulative += bucket
                    if bucket == 0 and index != len(histogram.buckets) - 1:
                        continue
                    bound = histogram.bound(index)
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_render_labels(key, [('le', le)])} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(histogram.total)}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {histogram.count}")
            for q in QUANTILES:
                suffix = f"_p{int(q * 100)}"
                lines.append(f"# TYPE {name}{suffix} gauge")
                for key, histogram in sorted(self._histograms[name].items()):
                    lines.append(
                        f"{name}{suffix}{_render_labels(key)} "
                        f"{_format_value(histogram.quantile(q))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_records(self) -> List[Dict[str, object]]:
        """JSON-serialisable metric records (the JSONL exposition).

        Record shape matches the trace files' one-object-per-line
        convention (``type="metric"``), so a snapshot can be appended to a
        telemetry trace or written standalone with
        :func:`repro.obs.trace_io.write_trace`.
        """
        records: List[Dict[str, object]] = []
        for name in sorted(self._counters):
            for key, value in sorted(self._counters[name].items()):
                records.append(
                    {
                        "type": "metric",
                        "kind": "counter",
                        "name": name,
                        "labels": dict(key),
                        "value": value,
                    }
                )
        for name in sorted(self._gauges):
            for key, value in sorted(self._gauges[name].items()):
                records.append(
                    {
                        "type": "metric",
                        "kind": "gauge",
                        "name": name,
                        "labels": dict(key),
                        "value": value,
                    }
                )
        for name in sorted(self._histograms):
            for key, histogram in sorted(self._histograms[name].items()):
                records.append(
                    {
                        "type": "metric",
                        "kind": "histogram",
                        "name": name,
                        "labels": dict(key),
                        "count": histogram.count,
                        "sum": histogram.total,
                        "min": 0.0 if histogram.count == 0 else histogram.minimum,
                        "max": histogram.maximum,
                        "quantiles": {
                            f"p{int(q * 100)}": histogram.quantile(q)
                            for q in QUANTILES
                        },
                    }
                )
        return records

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`to_records` to ``path`` as JSON lines; returns count."""
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return len(records)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry label={self.label!r} "
            f"counters={len(self._counters)} gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)}>"
        )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ---------------------------------------------------------------------------
# Process-global flag (same shape as the telemetry one)
# ---------------------------------------------------------------------------
_ACTIVE: Optional[MetricsRegistry] = None


def enable_metrics(label: str = "") -> MetricsRegistry:
    """Turn metrics on for this process; returns the active registry.

    Re-enabling replaces the active registry (a fresh scrape surface), so
    long-lived processes can rotate without unbounded label growth.
    """
    global _ACTIVE
    _ACTIVE = MetricsRegistry(label=label)
    return _ACTIVE


def disable_metrics() -> Optional[MetricsRegistry]:
    """Turn metrics off; returns the registry that was active (if any)."""
    global _ACTIVE
    active, _ACTIVE = _ACTIVE, None
    return active


def get_metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are off.

    Like :func:`repro.obs.telemetry.get_telemetry`, this is the one check
    request-level code makes — bind the result once per request.
    """
    return _ACTIVE


class metrics_session:
    """Enable metrics for the block; yields the registry, disables on exit."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.registry: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self.registry = enable_metrics(self.label)
        return self.registry

    def __exit__(self, *exc: object) -> bool:
        global _ACTIVE
        if _ACTIVE is self.registry:
            disable_metrics()
        return False


# ---------------------------------------------------------------------------
# Prometheus text parsing (CI smoke + tests; not a full scraper)
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="([^"]*)"')


def parse_prometheus(
    text: str,
) -> Dict[Tuple[str, _LabelKey], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    Strict on purpose — a malformed sample line raises ``ValueError`` so
    the CI smoke check fails loudly instead of silently skipping series.
    Comment (``#``) and blank lines are ignored.
    """
    samples: Dict[Tuple[str, _LabelKey], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        raw_labels = match.group("labels") or ""
        labels = _LABEL_RE.findall(raw_labels)
        rendered = "".join(f'{k}="{v}",' for k, v in labels)
        stripped = raw_labels.replace(" ", "")
        if stripped and stripped.rstrip(",") != rendered.rstrip(","):
            raise ValueError(f"malformed labels on line {lineno}: {line!r}")
        try:
            value = float(match.group("value"))
        except ValueError:
            if match.group("value") == "+Inf":
                value = math.inf
            elif match.group("value") == "-Inf":
                value = -math.inf
            else:
                raise ValueError(
                    f"malformed value on line {lineno}: {line!r}"
                ) from None
        samples[(match.group("name"), tuple(sorted(labels)))] = value
    return samples


def quantile_samples(
    samples: Dict[Tuple[str, _LabelKey], float], name: str, quantile: str
) -> List[float]:
    """All values of the ``<name>_<quantile>`` gauge series in ``samples``."""
    wanted = f"{name}_{quantile}"
    return [
        value for (sample_name, _), value in samples.items() if sample_name == wanted
    ]


def iter_series(
    samples: Dict[Tuple[str, _LabelKey], float], name: str
) -> Iterable[Tuple[_LabelKey, float]]:
    """Iterate the label sets of one series in a parsed exposition."""
    for (sample_name, labels), value in samples.items():
        if sample_name == name:
            yield labels, value
