"""Trace summarisation and the ``python -m repro obs report`` printer.

Works from raw trace records (live :class:`~repro.obs.telemetry.Telemetry`
output or a loaded JSONL file) and renders the tables the analyses need:
the phase-span breakdown, the rule-counter totals, per-component/worker
attribution for parallel runs, peeling-profile shapes, aggregate timers,
and memory probes against the Table-1 budgets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["summarize", "profile_is_monotone", "render_report"]


def summarize(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate raw trace records into a summary dict.

    Keys: ``phases`` (per span name: count / wall / top-level wall),
    ``span_total`` (sum of depth-0 span walls — comparable to the run's
    ``MISResult.elapsed``), ``counters``, ``timers``, ``profiles``,
    ``memory``, ``components`` (pid + wall per component), ``processes``
    (pid → label), ``requests`` (per request id: span/wall/source/backend
    attribution, from the serving layer's context stamps) and
    ``backend_picks`` (the auto dispatcher's per-solve picks).
    """
    phases: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, int] = {}
    timers: Dict[str, Dict[str, float]] = {}
    profiles: List[Dict[str, object]] = []
    memory: List[Dict[str, object]] = []
    components: Dict[object, Dict[str, object]] = {}
    processes: Dict[object, str] = {}
    requests: Dict[str, Dict[str, object]] = {}
    backend_picks: List[Dict[str, object]] = []
    span_total = 0.0

    def _request_cell(request: object) -> Dict[str, object]:
        return requests.setdefault(
            str(request),
            {
                "spans": 0,
                "wall": 0.0,
                "sources": {},
                "backends": {},
                "components": set(),
                "tenant": "",
            },
        )

    for record in records:
        kind = record.get("type")
        if kind == "meta":
            processes[record.get("pid")] = str(record.get("label", ""))
        elif kind == "span":
            name = str(record.get("name"))
            wall = float(record.get("wall", 0.0))
            depth = record.get("depth", 0)
            cell = phases.setdefault(name, {"count": 0, "wall": 0.0, "top_wall": 0.0})
            cell["count"] += 1
            cell["wall"] += wall
            if depth == 0:
                cell["top_wall"] += wall
                span_total += wall
            meta = record.get("meta")
            if not isinstance(meta, dict):
                meta = {}
            component = record.get("component")
            if component is None:
                component = meta.get("component")
            if component is not None:
                comp = components.setdefault(
                    component, {"pid": record.get("pid"), "wall": 0.0, "spans": []}
                )
                comp["spans"].append(name)
                if depth == 0:
                    comp["wall"] += wall
            request = record.get("request") or meta.get("request")
            if request is not None:
                req = _request_cell(request)
                req["spans"] = int(req["spans"]) + 1
                if depth == 0:
                    req["wall"] = float(req["wall"]) + wall
                tenant = record.get("tenant") or meta.get("tenant")
                if tenant:
                    req["tenant"] = str(tenant)
                if component is not None:
                    req["components"].add(component)  # type: ignore[union-attr]
                source = meta.get("source")
                if source is not None:
                    sources = req["sources"]
                    sources[source] = sources.get(source, 0) + 1  # type: ignore[union-attr]
                backend = meta.get("backend")
                if backend:
                    backends = req["backends"]
                    backends[backend] = backends.get(backend, 0) + 1  # type: ignore[union-attr]
        elif kind == "counters":
            for key, amount in dict(record.get("values", {})).items():
                counters[key] = counters.get(key, 0) + int(amount)
        elif kind == "timer":
            name = str(record.get("name"))
            cell = timers.setdefault(name, {"count": 0, "total": 0.0})
            cell["count"] += int(record.get("count", 0))
            cell["total"] += float(record.get("total", 0.0))
        elif kind == "profile":
            profiles.append(record)
        elif kind == "memory":
            memory.append(record)
        elif kind == "backend_pick":
            backend_picks.append(record)
            request = record.get("request")
            if request is not None:
                req = _request_cell(request)
                backend = str(record.get("backend", ""))
                if backend:
                    backends = req["backends"]
                    backends[backend] = backends.get(backend, 0) + 1  # type: ignore[union-attr]
    for req in requests.values():
        req["components"] = sorted(req["components"], key=str)  # type: ignore[arg-type]
    return {
        "phases": phases,
        "span_total": span_total,
        "counters": counters,
        "timers": timers,
        "profiles": profiles,
        "memory": memory,
        "components": components,
        "processes": processes,
        "requests": requests,
        "backend_picks": backend_picks,
    }


def profile_is_monotone(profile: Dict[str, object]) -> bool:
    """Whether the profile's live-vertex curve never increases.

    Reducing-peeling only ever deletes vertices, so a healthy profile is
    monotone non-increasing in live vertices; a violation means the live
    counters (or the sampler) are broken.
    """
    samples = profile.get("samples") or []
    lives = [sample[1] for sample in samples]
    return all(a >= b for a, b in zip(lives, lives[1:]))


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1e3:.2f}ms"


def render_report(records: Sequence[Dict[str, object]], title: str = "") -> str:
    """Human-readable text report over a trace's records."""
    summary = summarize(records)
    lines: List[str] = []
    if title:
        lines.append(title)
    phases = summary["phases"]
    span_total = summary["span_total"]
    if phases:
        lines.append("phase spans:")
        width = max(len(name) for name in phases)
        for name, cell in sorted(
            phases.items(), key=lambda item: -item[1]["wall"]
        ):
            share = 100.0 * cell["top_wall"] / span_total if span_total else 0.0
            lines.append(
                f"  {name:<{width}}  x{int(cell['count']):<5} "
                f"{_format_seconds(cell['wall']):>10}  {share:5.1f}%"
            )
        lines.append(f"  span total (top-level): {_format_seconds(span_total)}")
    timers = summary["timers"]
    if timers:
        lines.append("timers:")
        for name, cell in sorted(timers.items()):
            count = int(cell["count"])
            mean = cell["total"] / count if count else 0.0
            lines.append(
                f"  {name}: {count} calls, total {_format_seconds(cell['total'])}, "
                f"mean {_format_seconds(mean)}"
            )
    counters = summary["counters"]
    if counters:
        rendered = ", ".join(
            f"{key}={value:,}" for key, value in sorted(counters.items())
        )
        lines.append(f"rule counters: {rendered}")
    for profile in summary["profiles"]:
        samples = profile.get("samples") or []
        if not samples:
            continue
        first, last = samples[0], samples[-1]
        monotone = "monotone" if profile_is_monotone(profile) else "NON-MONOTONE"
        lines.append(
            f"peeling profile [{profile.get('algorithm')} on "
            f"{profile.get('graph')}]: {len(samples)} samples, "
            f"live {first[1]:,}->{last[1]:,} vertices / "
            f"{first[2]:,}->{last[2]:,} edges, bound {first[3]:,}->{last[3]:,} "
            f"({monotone})"
        )
    for record in summary["memory"]:
        line = (
            f"memory [{record.get('algorithm')} on {record.get('graph')}]: "
            f"peak {int(record.get('peak_bytes', 0)):,} bytes"
        )
        if "budget_bytes" in record:
            line += (
                f" vs Table-1 budget {int(record['budget_bytes']):,} bytes "
                f"({record['budget_words']:,} words)"
            )
        lines.append(line)
    components = summary["components"]
    if components:
        lines.append("per-component attribution:")
        for component, cell in sorted(
            components.items(), key=lambda item: str(item[0])
        ):
            label = summary["processes"].get(cell.get("pid"), "")
            worker = f"pid {cell.get('pid')}" + (f" ({label})" if label else "")
            lines.append(
                f"  component {component}: {worker}, "
                f"{len(cell['spans'])} spans, wall {_format_seconds(cell['wall'])}"
            )
    requests = summary["requests"]
    if requests:
        lines.append("per-request attribution:")
        for request, cell in sorted(requests.items()):
            parts = [
                f"{cell['spans']} spans",
                f"wall {_format_seconds(float(cell['wall']))}",
            ]
            if cell["tenant"]:
                parts.insert(0, f"tenant {cell['tenant']}")
            sources = cell["sources"]
            if sources:
                parts.append(
                    "sources "
                    + "/".join(f"{k}x{v}" for k, v in sorted(sources.items()))
                )
            backends = cell["backends"]
            if backends:
                parts.append(
                    "backends "
                    + "/".join(f"{k}x{v}" for k, v in sorted(backends.items()))
                )
            if cell["components"]:
                parts.append(f"components {cell['components']}")
            lines.append(f"  {request}: " + ", ".join(parts))
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.report <trace.jsonl>`` — standalone printer."""
    import argparse

    from .trace_io import load_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__
    )
    parser.add_argument("trace", help="JSON-lines trace file")
    args = parser.parse_args(argv)
    print(render_report(load_trace(args.trace), title=f"trace: {args.trace}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
