"""Workspace instrumentation: peeling profiles and traced replay.

The reducing-peeling drivers expose ``workspace_factory`` hooks precisely so
the mutable-state backend can be swapped without touching the loops.  The
telemetry layer rides that seam: :func:`instrumented_factory` wraps any
workspace class in a subclass whose mutation methods feed a sampled
**peeling profile** — ``(events, live_vertices, live_edges, current_bound)``
tuples taken every ``n / PROFILE_TARGET_SAMPLES`` mutations using the
O(1)-maintained live counters from PR 1.

Because the instrumented class is a *subclass*, the drivers' exact-type
dispatch (``type(ws) is FlatWorkspace``) routes it through the generic
method-call loop instead of the fused flat loop — which is exactly what we
want: the flat hot path stays flat (and un-instrumented) when telemetry is
off, and the generic protocol gives the profile its hooks when it is on.
Decision logs are identical either way, so enabling telemetry never changes
a result.

``current_bound`` is ``includes_so_far + live_vertices`` — a running upper
bound on the final solution size.  Includes are counted by scanning only
the *new* suffix of the decision log at each sample, so total sampling cost
is O(log length) over the whole run.
"""

from __future__ import annotations

from typing import Callable, Type

from ..core.trace import INCLUDE, DecisionLog, ReplayOutcome, extend_to_maximal
from .telemetry import Telemetry

__all__ = [
    "PROFILE_TARGET_SAMPLES",
    "instrumented_factory",
    "finish_profile",
    "traced_replay",
]

#: Target number of profile samples per run; the sampling interval is
#: ``max(1, n // PROFILE_TARGET_SAMPLES)`` mutation events.
PROFILE_TARGET_SAMPLES = 200


def instrumented_factory(
    base: Type, telemetry: Telemetry, algorithm: str, graph_name: str = ""
) -> Callable:
    """A subclass of workspace class ``base`` that records a peeling profile.

    Works with any backend exposing the shared mutation protocol
    (``include`` / ``delete_vertex`` / ``remove_silently``) plus the live
    counters (``live_vertex_count`` / ``live_edge_count``) — i.e. every
    workspace in :mod:`repro.core.workspace`, :mod:`repro.core.dominance`
    and :mod:`repro.core.flat_dominance`.
    """

    class Instrumented(base):  # type: ignore[misc, valid-type]
        # No __slots__: the telemetry attributes live in the instance dict,
        # which only exists on instrumented (telemetry-enabled) runs.

        def __init__(self, graph, *args, **kwargs):
            self._tele_events = 0
            self._tele_interval = max(1, graph.n // PROFILE_TARGET_SAMPLES)
            self._tele_scan_pos = 0
            self._tele_includes = 0
            self._tele_samples = telemetry.profile(
                algorithm, graph_name or graph.name
            )
            super().__init__(graph, *args, **kwargs)
            self._tele_sample()  # the t=0 point: full graph, empty solution

        # -- sampling --------------------------------------------------
        def _tele_tick(self) -> None:
            self._tele_events += 1
            if self._tele_events % self._tele_interval == 0:
                self._tele_sample()

        def _tele_sample(self) -> None:
            entries = self.log.entries
            pos = self._tele_scan_pos
            includes = self._tele_includes
            end = len(entries)
            while pos < end:
                if entries[pos][0] == INCLUDE:
                    includes += 1
                pos += 1
            self._tele_scan_pos = pos
            self._tele_includes = includes
            live = self.live_vertex_count
            self._tele_samples.append(
                (self._tele_events, live, self.live_edge_count(), includes + live)
            )

        # -- instrumented mutations ------------------------------------
        def include(self, v: int) -> None:
            super().include(v)
            self._tele_tick()

        def delete_vertex(self, v: int, reason: str = "exclude") -> None:
            super().delete_vertex(v, reason)
            self._tele_tick()

        def remove_silently(self, v: int) -> None:
            super().remove_silently(v)
            self._tele_tick()

    Instrumented.__name__ = f"Instrumented{base.__name__}"
    Instrumented.__qualname__ = Instrumented.__name__
    return Instrumented


def finish_profile(workspace) -> None:
    """Take the final profile sample (end-of-run state), if instrumented."""
    sample = getattr(workspace, "_tele_sample", None)
    if sample is not None:
        sample()


def traced_replay(
    log: DecisionLog,
    graph,
    telemetry: Telemetry,
    algorithm: str,
    extend: bool = True,
) -> ReplayOutcome:
    """Replay a decision log under ``replay`` and ``extend`` phase spans.

    Identical outcome to :meth:`~repro.core.trace.DecisionLog.replay`; the
    two phases of solution reconstruction are timed separately so a trace
    can show how much of the tail is deferred-decision resolution versus
    the maximal-extension sweep.
    """
    with telemetry.span("replay", algorithm=algorithm, graph=graph.name) as span:
        in_set, peeled = log.resolve(graph.n)
        span.meta["log_entries"] = len(log)
    if extend:
        with telemetry.span("extend", algorithm=algorithm, graph=graph.name):
            extend_to_maximal(in_set, graph)
    surviving = sum(1 for v in peeled if not in_set[v])
    return ReplayOutcome(in_set, len(peeled), surviving)
