"""JSON-lines trace emission, loading, and cross-process merging.

A *trace* is a sequence of JSON records, one per line — the format every
observability stack speaks natively and ``jq`` chews through.  Record
``type``s: ``meta`` (run header), ``span``, ``counters``, ``timer``,
``profile``, ``memory``, plus anything a caller appends via
:meth:`~repro.obs.telemetry.Telemetry.record`.

The collector side exists for :func:`repro.perf.parallel.solve_by_components_parallel`:
each worker process writes its own trace file (telemetry objects are
per-process by design — workers cannot share the parent's clock or lists),
and :func:`collect_worker_traces` reads them back so the parent can adopt
the records into one merged trace.  Worker records carry ``pid`` and
``component`` fields, which is what lets the merged report attribute every
component's spans to the worker that ran them.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

__all__ = [
    "write_trace",
    "load_trace",
    "collect_worker_traces",
    "merge_traces",
]


def write_trace(
    path: str,
    records: Iterable[Dict[str, object]],
    stamp: Optional[Dict[str, object]] = None,
) -> int:
    """Write trace records to ``path`` as JSON lines; returns the count.

    ``stamp`` fields are merged into every record that does not already
    carry them — the worker side uses this to tag records with their
    component id without threading the id through every span call.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            if stamp:
                merged = dict(stamp)
                merged.update(record)
                record = merged
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_trace(path: str) -> List[Dict[str, object]]:
    """Read a JSON-lines trace back into a record list (blank lines skipped)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def collect_worker_traces(paths: Iterable[str]) -> List[Dict[str, object]]:
    """Load every existing worker trace file; missing files are skipped.

    A worker that solved a component *may* legitimately leave no file when
    it crashed after solving but before flushing — the solve result still
    arrives through the pool, so the merged trace must tolerate the gap
    rather than fail the whole run.
    """
    records: List[Dict[str, object]] = []
    for path in paths:
        if os.path.exists(path):
            records.extend(load_trace(path))
    return records


def merge_traces(record_lists: Iterable[List[Dict[str, object]]]) -> Dict[str, object]:
    """Merge per-process record lists into one run report.

    Returns ``{"records": [...], "processes": {pid: label}, "components":
    {component: {"pid": …, "spans": […], "wall": …}}}`` — the per-component
    attribution the parallel driver's merged report is built from.  Records
    without a ``component`` field (the parent's own phases) are attributed
    to component ``None`` under the parent pid.
    """
    merged: List[Dict[str, object]] = []
    processes: Dict[int, str] = {}
    components: Dict[object, Dict[str, object]] = {}
    for records in record_lists:
        for record in records:
            merged.append(record)
            pid = record.get("pid")
            if record.get("type") == "meta" and pid is not None:
                processes[pid] = str(record.get("label", ""))
            if record.get("type") != "span":
                continue
            component = record.get("component")
            if component is None:
                meta = record.get("meta")
                if isinstance(meta, dict):
                    component = meta.get("component")
            cell = components.setdefault(
                component, {"pid": pid, "spans": [], "wall": 0.0}
            )
            cell["spans"].append(record.get("name"))
            if record.get("depth", 0) == 0:
                cell["wall"] += float(record.get("wall", 0.0))
            if cell["pid"] is None:
                cell["pid"] = pid
    return {"records": merged, "processes": processes, "components": components}
