"""Linear-programming based reduction (Nemhauser–Trotter / crown family).

The LP relaxation of vertex cover (``min Σ x_v`` s.t. ``x_u + x_v ≥ 1``)
always has a half-integral optimum computable from a maximum matching on the
*bipartite double cover*: vertices are split into left/right copies and each
edge ``(u, v)`` becomes ``(L_u, R_v)`` and ``(L_v, R_u)``.  König's theorem
turns a maximum matching into a minimum vertex cover of the double cover,
and ``x_v = (|{L_v} ∩ C| + |{R_v} ∩ C|) / 2 ∈ {0, ½, 1}``.

By the Nemhauser–Trotter persistency theorem, some maximum independent set
contains every vertex with ``x_v = 0`` and no vertex with ``x_v = 1``, so

    ``α(G) = |V₀| + α(G[V_½])``.

The paper runs this reduction once inside NearLinear's preprocessing
(Section 5) — it is also the "linear programming-based upper bound" of [1]
used in Table 7: ``α(G) ≤ |V₀| + |V_½| / 2``.

The matching is found with Hopcroft–Karp, O(m·√n) worst case.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..graphs.static_graph import Graph

__all__ = ["HopcroftKarp", "LPReductionResult", "lp_reduction", "lp_upper_bound"]

_INF = float("inf")


class HopcroftKarp:
    """Maximum matching in a bipartite graph given as left-side adjacency.

    Parameters
    ----------
    n_left, n_right:
        Sizes of the two sides.
    adjacency:
        ``adjacency[u]`` lists the right-side neighbours of left vertex
        ``u``.
    """

    def __init__(self, n_left: int, n_right: int, adjacency: List) -> None:
        self.n_left = n_left
        self.n_right = n_right
        self.adjacency = adjacency
        self.match_left: List[int] = [-1] * n_left
        self.match_right: List[int] = [-1] * n_right
        self._dist: List[float] = [0.0] * n_left

    def solve(self) -> int:
        """Run Hopcroft–Karp; returns the matching size."""
        matching = 0
        while self._bfs():
            for u in range(self.n_left):
                if self.match_left[u] == -1 and self._augment(u):
                    matching += 1
        return matching

    def _bfs(self) -> bool:
        dist = self._dist
        queue: deque = deque()
        for u in range(self.n_left):
            if self.match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in self.adjacency[u]:
                nxt = self.match_right[v]
                if nxt == -1:
                    found = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[u] + 1.0
                    queue.append(nxt)
        return found

    def _augment(self, root: int) -> bool:
        """Find and apply one shortest augmenting path from ``root``.

        Iterative (explicit stack) so that long alternating paths — e.g.
        on big cycles — cannot blow the interpreter's recursion limit.
        """
        dist = self._dist
        match_left = self.match_left
        match_right = self.match_right
        adjacency = self.adjacency
        nodes = [root]
        iterators = [iter(adjacency[root])]
        chosen: List[int] = [-1]
        while nodes:
            u = nodes[-1]
            descended = False
            for v in iterators[-1]:
                nxt = match_right[v]
                if nxt == -1:
                    # Free right vertex: flip the whole alternating path.
                    chosen[-1] = v
                    for node, partner in zip(nodes, chosen):
                        match_left[node] = partner
                        match_right[partner] = node
                    return True
                if dist[nxt] == dist[u] + 1.0:
                    chosen[-1] = v
                    nodes.append(nxt)
                    iterators.append(iter(adjacency[nxt]))
                    chosen.append(-1)
                    descended = True
                    break
            if not descended:
                dist[u] = _INF
                nodes.pop()
                iterators.pop()
                chosen.pop()
        return False

    def minimum_vertex_cover(self) -> Tuple[List[bool], List[bool]]:
        """König cover after :meth:`solve`: (left-side flags, right-side flags).

        ``Z`` = vertices reachable from unmatched left vertices by
        alternating paths; the cover is ``(L \\ Z_L) ∪ Z_R``.
        """
        visited_left = [False] * self.n_left
        visited_right = [False] * self.n_right
        queue: deque = deque()
        for u in range(self.n_left):
            if self.match_left[u] == -1:
                visited_left[u] = True
                queue.append(u)
        while queue:
            u = queue.popleft()
            for v in self.adjacency[u]:
                if not visited_right[v] and self.match_left[u] != v:
                    visited_right[v] = True
                    nxt = self.match_right[v]
                    if nxt != -1 and not visited_left[nxt]:
                        visited_left[nxt] = True
                        queue.append(nxt)
        cover_left = [not flag for flag in visited_left]
        cover_right = list(visited_right)
        return cover_left, cover_right


@dataclass(frozen=True)
class LPReductionResult:
    """Outcome of the LP reduction.

    ``included`` are the ``x = 0`` vertices (go into the solution),
    ``excluded`` the ``x = 1`` vertices (removed), ``remaining`` the
    ``x = ½`` vertices (the residual problem); ``α(G) = |included| +
    α(G[remaining])``.
    """

    included: Tuple[int, ...]
    excluded: Tuple[int, ...]
    remaining: Tuple[int, ...]

    @property
    def lp_bound(self) -> float:
        """The LP upper bound on α: ``|V₀| + |V_½| / 2``."""
        return len(self.included) + len(self.remaining) / 2.0


def _solve_csr(
    n: int, xadj: Sequence[int], adj: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Hopcroft–Karp on the bipartite double cover, straight off CSR buffers.

    Behaviourally identical to :class:`HopcroftKarp` fed the neighbour
    lists in adjacency order — the BFS layering, the DFS descent order and
    therefore the final matching are the same; only the constant factor
    differs (no per-vertex adjacency lists, no per-root stack allocations,
    no boxed-float distances).  Returns ``(match_left, match_right)``.
    """
    inf = n + 1  # strictly above any reachable BFS layer
    match_left = [-1] * n
    match_right = [-1] * n
    dist = [0] * n
    queue: deque = deque()
    queue_append = queue.append
    queue_popleft = queue.popleft
    # Reused DFS stacks: nodes on the current alternating path, the row
    # position each has scanned up to, and the right vertex it descended
    # through (the partner-to-be if the path augments).
    nodes: List[int] = []
    ptrs: List[int] = []
    chosen: List[int] = []
    while True:
        # --- BFS phase: layer left vertices by alternating distance.
        for u in range(n):
            if match_left[u] == -1:
                dist[u] = 0
                queue_append(u)
            else:
                dist[u] = inf
        found = False
        while queue:
            u = queue_popleft()
            layer = dist[u] + 1
            for v in adj[xadj[u] : xadj[u + 1]]:
                nxt = match_right[v]
                if nxt == -1:
                    found = True
                elif dist[nxt] == inf:
                    dist[nxt] = layer
                    queue_append(nxt)
        if not found:
            return match_left, match_right
        # --- DFS phase: one shortest augmenting path per free left vertex.
        for root in range(n):
            if match_left[root] != -1:
                continue
            nodes.append(root)
            ptrs.append(xadj[root])
            chosen.append(-1)
            while nodes:
                u = nodes[-1]
                j = ptrs[-1]
                hi = xadj[u + 1]
                layer = dist[u] + 1
                descended = False
                while j < hi:
                    v = adj[j]
                    j += 1
                    nxt = match_right[v]
                    if nxt == -1:
                        # Free right vertex: flip the whole alternating path.
                        chosen[-1] = v
                        for node, partner in zip(nodes, chosen):
                            match_left[node] = partner
                            match_right[partner] = node
                        nodes.clear()
                        ptrs.clear()
                        chosen.clear()
                        descended = True
                        break
                    if dist[nxt] == layer:
                        ptrs[-1] = j
                        chosen[-1] = v
                        nodes.append(nxt)
                        ptrs.append(xadj[nxt])
                        chosen.append(-1)
                        descended = True
                        break
                if not descended:
                    dist[u] = inf
                    nodes.pop()
                    ptrs.pop()
                    chosen.pop()


def _minimum_vertex_cover_csr(
    n: int,
    xadj: Sequence[int],
    adj: Sequence[int],
    match_left: List[int],
    match_right: List[int],
) -> Tuple[List[bool], List[bool]]:
    """König cover over CSR buffers (mirrors
    :meth:`HopcroftKarp.minimum_vertex_cover`)."""
    visited_left = [False] * n
    visited_right = [False] * n
    queue: deque = deque()
    for u in range(n):
        if match_left[u] == -1:
            visited_left[u] = True
            queue.append(u)
    while queue:
        u = queue.popleft()
        partner = match_left[u]
        for v in adj[xadj[u] : xadj[u + 1]]:
            if not visited_right[v] and partner != v:
                visited_right[v] = True
                nxt = match_right[v]
                if nxt != -1 and not visited_left[nxt]:
                    visited_left[nxt] = True
                    queue.append(nxt)
    cover_left = [not flag for flag in visited_left]
    return cover_left, visited_right


def lp_reduction(graph: Graph) -> LPReductionResult:
    """Classify every vertex by its half-integral LP value."""
    n = graph.n
    xadj, adj = graph.csr_arrays()
    match_left, match_right = _solve_csr(n, xadj, adj)
    cover_left, cover_right = _minimum_vertex_cover_csr(
        n, xadj, adj, match_left, match_right
    )
    included: List[int] = []
    excluded: List[int] = []
    remaining: List[int] = []
    for v in range(n):
        if cover_left[v]:
            (excluded if cover_right[v] else remaining).append(v)
        else:
            (remaining if cover_right[v] else included).append(v)
    return LPReductionResult(tuple(included), tuple(excluded), tuple(remaining))


def lp_upper_bound(graph: Graph) -> float:
    """The LP relaxation upper bound on α(G) (used by Table 7)."""
    return lp_reduction(graph).lp_bound
