"""Bin-sort-like degree selectors (paper Section 3.2).

The peeling step needs "the vertex with the highest degree" under dynamic
degree changes.  The paper uses a bucket structure with one bin per degree
value and the *lazy update* strategy: since degrees only decrease in BDOne /
LinearTime / NearLinear, a vertex's bucket is corrected only at pop time,
which lets the structure use plain stacks instead of doubly-linked lists.

:class:`MaxDegreeSelector` implements exactly that, with an extra
``notify_increase`` hook so BDTwo (where contraction can *grow* a degree,
Section 3.3) can reuse it: an increased vertex is re-pushed at its new degree
and the max pointer is bumped; stale copies are filtered at pop time.

:class:`MinDegreeSelector` is the mirror image used by the DU baseline
(adaptive minimum-degree greedy).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["MaxDegreeSelector", "MinDegreeSelector"]


class MaxDegreeSelector:
    """Lazy bucket queue returning the maximum-degree live vertex.

    Parameters
    ----------
    degrees:
        The algorithm's live degree array.  The selector keeps a reference
        and always validates popped candidates against it.
    alive:
        Live flags (any sequence supporting integer truthiness lookups),
        shared with the algorithm the same way.
    """

    __slots__ = ("_degrees", "_alive", "_buckets", "_current")

    def __init__(self, degrees: Sequence[int], alive: Sequence[int]) -> None:
        self._degrees = degrees
        self._alive = alive
        max_degree = max(degrees, default=0)
        self._buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
        for v, d in enumerate(degrees):
            if alive[v] and d > 0:
                self._buckets[d].append(v)
        self._current = max_degree

    def notify_increase(self, v: int) -> None:
        """Re-file ``v`` after its degree grew (BDTwo contraction)."""
        d = self._degrees[v]
        while d >= len(self._buckets):
            self._buckets.append([])
        self._buckets[d].append(v)
        if d > self._current:
            self._current = d

    def pop_max(self) -> Optional[int]:
        """Pop and return a live vertex of maximum degree, or ``None``.

        Runs in amortised O(1 + relocations): stale entries are either
        dropped (dead vertex or duplicate) or moved down to their true
        bucket, and the max pointer never re-scans upward unless
        :meth:`notify_increase` raised it.
        """
        buckets = self._buckets
        degrees = self._degrees
        alive = self._alive
        current = self._current
        while current > 0:
            bucket = buckets[current]
            while bucket:
                v = bucket.pop()
                if not alive[v]:
                    continue
                d = degrees[v]
                if d == current:
                    self._current = current
                    return v
                if 0 < d < current:
                    buckets[d].append(v)  # lazy relocation
                # d > current can only happen transiently in BDTwo; the
                # fresh copy pushed by notify_increase covers it, so the
                # stale one is simply dropped.
            current -= 1
        self._current = 0
        return None


class MinDegreeSelector:
    """Lazy bucket queue returning the minimum-degree live vertex.

    Degrees in DU only decrease, so a popped vertex may sit *above* its true
    bucket; relocation moves entries down and the min pointer is lowered on
    every relocation, keeping the total work linear.
    """

    __slots__ = ("_degrees", "_alive", "_buckets", "_current")

    def __init__(self, degrees: Sequence[int], alive: Sequence[int]) -> None:
        self._degrees = degrees
        self._alive = alive
        max_degree = max(degrees, default=0)
        self._buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
        for v, d in enumerate(degrees):
            if alive[v]:
                self._buckets[d].append(v)
        self._current = 0

    def notify_decrease(self, v: int) -> None:
        """Re-file ``v`` after its degree dropped."""
        d = self._degrees[v]
        self._buckets[d].append(v)
        if d < self._current:
            self._current = d

    def pop_min(self) -> Optional[int]:
        """Pop and return a live vertex of minimum degree, or ``None``."""
        buckets = self._buckets
        degrees = self._degrees
        alive = self._alive
        current = self._current
        while current < len(buckets):
            bucket = buckets[current]
            while bucket:
                v = bucket.pop()
                if not alive[v]:
                    continue
                if degrees[v] == current:
                    self._current = current
                    return v
                # Stale entry: the fresh copy pushed by notify_decrease is
                # in a lower bucket and was, or will be, seen first.
            current += 1
        self._current = len(buckets)
        return None
