"""Kernelization API (paper Sections 6 and 7, Eval-III).

Running only the *Reducing* half of Reducing-Peeling — stopping right before
the first peel — yields the **kernel graph** 𝒦: a smaller instance with
``α(G)`` recoverable from ``α(𝒦)``.  The paper uses kernels to

* boost the ARW local search (ARW-LT / ARW-NL start from the kernel), and
* compare kernelization power/cost across rule sets (Figure 9 / Eval-III).

:func:`kernelize` produces a :class:`KernelResult`; its :meth:`~KernelResult.lift`
maps any independent set of the kernel back to a (maximal) independent set
of the original graph by replaying the recorded reduction decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Tuple

from ..errors import ReproError
from ..graphs.static_graph import Graph
from .linear_time import linear_time_reduce
from .near_linear import near_linear_reduce
from .result import STAT_DEGREE_ONE
from .trace import DecisionLog
from .vectorized import linear_time_vec_reduce, near_linear_vec_reduce
from .workspace import ArrayWorkspace

__all__ = ["KernelResult", "kernelize", "KERNEL_METHODS"]


@dataclass(frozen=True)
class KernelResult:
    """A kernel graph together with everything needed to lift solutions.

    Attributes
    ----------
    graph:
        The original input graph.
    kernel:
        The compacted residual graph 𝒦.
    old_ids:
        ``old_ids[kernel_id] = original_id``.
    log:
        The reduction decisions taken while kernelizing.
    method:
        Which rule set produced the kernel.
    """

    graph: Graph
    kernel: Graph
    old_ids: Tuple[int, ...]
    log: DecisionLog
    method: str

    @property
    def kernel_size(self) -> int:
        """Number of vertices in the kernel (the paper's Table 3 metric)."""
        return self.kernel.n

    @property
    def is_solved(self) -> bool:
        """True when the kernel is empty — the reductions alone solved G,
        and :meth:`lift` of the empty set is a certified maximum
        independent set (no peeling ever happened)."""
        return self.kernel.n == 0

    def lift(self, kernel_solution: Iterable[int]) -> FrozenSet[int]:
        """Map an independent set of the kernel back to the original graph.

        The kernel ids in ``kernel_solution`` are translated, the reduction
        log is replayed (resolving deferred path/fold decisions), and the
        result is extended to a maximal independent set of the original
        graph.  If ``kernel_solution`` is a maximum independent set of the
        kernel, the lifted set is a maximum independent set of ``graph``.

        Raises :class:`~repro.errors.NotASolutionError` if the input is not
        an independent set of the kernel (kernel edges include rewired
        edges absent from the original graph, so this cannot be checked
        downstream).
        """
        from ..analysis.verify import is_independent_set
        from ..errors import NotASolutionError

        solution = list(kernel_solution)
        if not is_independent_set(self.kernel, solution):
            raise NotASolutionError("kernel solution is not independent in the kernel")
        log = self.log.copy()
        for v in solution:
            log.include(self.old_ids[v])
        return log.replay(self.graph).vertices

    # ------------------------------------------------------------------
    # Serialisation (service snapshots)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """A JSON-serialisable export of the kernel state.

        Everything except the original graph crosses the boundary: the
        kernel's own edges, the id map, the reduction log, and the method
        tag.  :meth:`from_payload` rebuilds the result given the original
        graph (which snapshot owners persist separately — the service
        stores it as a mutation-ready adjacency payload).
        """
        return {
            "method": self.method,
            "old_ids": list(self.old_ids),
            "kernel_n": self.kernel.n,
            "kernel_edges": [[u, v] for u, v in self.kernel.edges()],
            "log": self.log.to_payload(),
        }

    @classmethod
    def from_payload(cls, graph: Graph, payload: Dict[str, object]) -> "KernelResult":
        """Rebuild a :meth:`to_payload` export against its original graph."""
        kernel = Graph.from_edges(
            int(payload["kernel_n"]),  # type: ignore[arg-type]
            ((int(u), int(v)) for u, v in payload["kernel_edges"]),  # type: ignore[union-attr]
            name=f"{graph.name}/kernel" if graph.name else "",
        )
        return cls(
            graph=graph,
            kernel=kernel,
            old_ids=tuple(int(v) for v in payload["old_ids"]),  # type: ignore[union-attr]
            log=DecisionLog.from_payload(payload["log"]),  # type: ignore[arg-type]
            method=str(payload["method"]),
        )


def _degree_one_reduce(graph: Graph) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize with the degree-one reduction only (BDOne's rule set)."""
    workspace = ArrayWorkspace(graph, track_degree_two=False)
    while True:
        u = workspace.pop_degree_one()
        if u is None:
            break
        for v in workspace.iter_live_neighbors(u):
            workspace.delete_vertex(v, "exclude")
            break
        workspace.log.bump(STAT_DEGREE_ONE)
    kernel, old_ids = workspace.export_kernel()
    return kernel, old_ids, workspace.log


KERNEL_METHODS: Dict[str, Callable[[Graph], Tuple[Graph, List[int], DecisionLog]]] = {
    "degree_one": _degree_one_reduce,
    "linear_time": linear_time_reduce,
    "near_linear": near_linear_reduce,
    "linear_time_vec": linear_time_vec_reduce,
    "near_linear_vec": near_linear_vec_reduce,
}


def kernelize(graph: Graph, method: str = "near_linear") -> KernelResult:
    """Compute the kernel of ``graph`` under the given rule set.

    ``method`` is one of ``"degree_one"`` (BDOne's rule), ``"linear_time"``
    (degree-one + degree-two path reductions) or ``"near_linear"`` (adds
    dominance, one-pass dominance and the LP reduction); the ``*_vec``
    variants run the same rule sets on the vectorized backend (batch
    frontier sweeps — see :mod:`repro.core.vectorized`).  The full-rule
    kernel of [1] lives in :func:`repro.exact.vcsolver.full_kernelize`.
    """
    try:
        reduce_fn = KERNEL_METHODS[method]
    except KeyError:
        raise ReproError(
            f"unknown kernel method {method!r}; choose from {sorted(KERNEL_METHODS)}"
        ) from None
    kernel, old_ids, log = reduce_fn(graph)
    return KernelResult(graph, kernel, tuple(old_ids), log, method)
