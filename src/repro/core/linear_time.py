"""LinearTime — the effective linear-time algorithm (paper Algorithm 4).

Reducing-Peeling with two exact rules:

* the degree-one reduction (Lemma 2.1), drained with top priority, and
* the degree-two **path** reductions (Lemma 4.1), which process an entire
  maximal degree-two path in one shot and defer the alternating in/out
  decisions to a reconstruction stack.

Because paths are consumed wholesale, the total work over all path
reductions is bounded by the number of removed directed edges, keeping the
whole algorithm at O(m) time and 2m + O(n) space — the same budget as BDOne
but with solution quality close to BDTwo.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..graphs.static_graph import Graph
from .degree_two_paths import RULE_IRREDUCIBLE, apply_degree_two_path_reduction
from .result import MISResult
from .trace import DecisionLog
from .workspace import ArrayWorkspace

__all__ = ["linear_time", "linear_time_reduce"]


def _reduce(workspace: ArrayWorkspace, stop_before_peel: bool) -> bool:
    """Run the LinearTime reduction loop.

    Returns ``True`` when the graph was fully consumed, ``False`` when the
    loop stopped at the first would-be peel (``stop_before_peel``).
    """
    log = workspace.log
    while True:
        u = workspace.pop_degree_one()
        if u is not None:
            for v in workspace.iter_live_neighbors(u):
                workspace.delete_vertex(v, "exclude")
                break
            log.bump("degree-one")
            continue
        u = workspace.pop_degree_two()
        if u is not None:
            rule = apply_degree_two_path_reduction(workspace, u)
            if rule != RULE_IRREDUCIBLE:
                log.bump(rule)
            continue
        u = workspace.pop_max_degree()
        if u is None:
            return True
        if stop_before_peel:
            # Put the vertex back conceptually: the kernel snapshot below
            # still contains it, so nothing further is needed.
            return False
        workspace.delete_vertex(u, "peel")
        log.bump("peel")


def linear_time(graph: Graph) -> MISResult:
    """Compute a maximal independent set of ``graph`` with LinearTime."""
    start = time.perf_counter()
    workspace = ArrayWorkspace(graph, track_degree_two=True)
    _reduce(workspace, stop_before_peel=False)
    outcome = workspace.log.replay(graph)
    return MISResult(
        algorithm="LinearTime",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(workspace.log.stats),
        elapsed=time.perf_counter() - start,
    )


def linear_time_reduce(
    graph: Graph,
) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize ``graph`` with LinearTime's exact rules only (no peeling).

    Returns ``(kernel, old_ids, log)``: the compacted residual graph, the
    map from kernel ids to original ids, and the decision log to replay once
    a solution for the kernel is known.  Used by ARW-LT (Section 6) and the
    Eval-III kernel comparison.
    """
    workspace = ArrayWorkspace(graph, track_degree_two=True)
    _reduce(workspace, stop_before_peel=True)
    kernel, old_ids = workspace.export_kernel()
    return kernel, old_ids, workspace.log
