"""LinearTime — the effective linear-time algorithm (paper Algorithm 4).

Reducing-Peeling with two exact rules:

* the degree-one reduction (Lemma 2.1), drained with top priority, and
* the degree-two **path** reductions (Lemma 4.1), which process an entire
  maximal degree-two path in one shot and defer the alternating in/out
  decisions to a reconstruction stack.

Because paths are consumed wholesale, the total work over all path
reductions is bounded by the number of removed directed edges, keeping the
whole algorithm at O(m) time and 2m + O(n) space — the same budget as BDOne
but with solution quality close to BDTwo.

As in :mod:`repro.core.bdone`, two execution paths share the decision
semantics: :func:`_reduce` drives any workspace through the public mutation
protocol, while :func:`_reduce_flat` binds the
:class:`~repro.core.workspace.FlatWorkspace` buffers to locals and fuses
the degree-one cascade, deletions and log appends (the degree-two path
reductions stay in the shared Lemma 4.1 driver).  The decision logs are
identical either way.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.static_graph import Graph
from .hotpath import hot_loop
from .degree_two_paths import RULE_IRREDUCIBLE, apply_degree_two_path_reduction
from .result import STAT_DEGREE_ONE, STAT_PEEL, MISResult
from .trace import EXCLUDE, INCLUDE, PEEL, DecisionLog
from .vectorized import VecWorkspace, drive_linear_time_vec
from .workspace import FlatWorkspace
from ..obs.instrument import finish_profile, instrumented_factory, traced_replay
from ..obs.telemetry import get_telemetry, phase

__all__ = ["linear_time", "linear_time_reduce"]


def _reduce(workspace: Any, stop_before_peel: bool) -> bool:
    """Run the LinearTime reduction loop on any workspace backend.

    Returns ``True`` when the graph was fully consumed, ``False`` when the
    loop stopped at the first would-be peel (``stop_before_peel``).
    """
    log = workspace.log
    pop_degree_one = workspace.pop_degree_one
    pop_degree_two = workspace.pop_degree_two
    pop_max_degree = workspace.pop_max_degree
    delete_vertex = workspace.delete_vertex
    iter_live_neighbors = workspace.iter_live_neighbors
    bump = log.bump
    while True:
        u = pop_degree_one()
        if u is not None:
            for v in iter_live_neighbors(u):
                delete_vertex(v, "exclude")
                break
            bump(STAT_DEGREE_ONE)
            continue
        u = pop_degree_two()
        if u is not None:
            rule = apply_degree_two_path_reduction(workspace, u)
            if rule != RULE_IRREDUCIBLE:
                bump(rule)
            continue
        u = pop_max_degree()
        if u is None:
            return True
        if stop_before_peel:
            # Put the vertex back conceptually: the kernel snapshot below
            # still contains it, so nothing further is needed.
            return False
        delete_vertex(u, "peel")
        bump(STAT_PEEL)


@hot_loop
def _reduce_flat(workspace: FlatWorkspace, stop_before_peel: bool) -> bool:
    """The same loop specialized to the flat CSR buffers.

    The degree-one rule, the deletions and the peels operate on locals
    (``adj``/``deg``/``alive``/worklists) and append decision entries
    directly; rule counters are accumulated locally and committed to the
    log in one batch when the loop exits.
    """
    log = workspace.log
    append_entry = log.entries.append
    adj = workspace.adj
    xadj = workspace.xadj
    deg = workspace.deg
    alive = workspace.alive
    v1 = workspace.v1
    v2 = workspace.v2
    v1_pop = v1.pop
    v2_pop = v2.pop
    v1_append = v1.append
    v2_append = v2.append
    pop_max_degree = workspace.pop_max_degree
    dead = 0
    deg_sum_drop = 0
    degree_one_count = 0
    peel_count = 0
    rule_counts: Dict[str, int] = {}
    consumed = True
    while True:
        # --- degree-one rule: delete the sole live neighbour of u ------
        u = -1
        while v1:
            x = v1_pop()
            if alive[x] and deg[x] == 1:
                u = x
                break
        if u >= 0:
            for v in adj[xadj[u] : xadj[u + 1]]:
                if alive[v]:
                    break
            alive[v] = 0
            dead += 1
            deg_sum_drop += 2 * deg[v]
            append_entry((EXCLUDE, (v,)))
            for w in adj[xadj[v] : xadj[v + 1]]:
                if alive[w]:
                    d = deg[w] - 1
                    deg[w] = d
                    if d == 1:
                        v1_append(w)
                    elif d == 2:
                        v2_append(w)
                    elif d == 0:
                        alive[w] = 0
                        dead += 1
                        append_entry((INCLUDE, (w,)))
            degree_one_count += 1
            continue
        # --- degree-two path reductions (shared Lemma 4.1 driver) ------
        u = -1
        while v2:
            x = v2_pop()
            if alive[x] and deg[x] == 2:
                u = x
                break
        if u >= 0:
            # The shared driver mutates through workspace methods, which
            # maintain the live counters themselves — flush the local
            # deltas first so the workspace state it sees is consistent.
            workspace._nlive -= dead
            workspace._live_deg_sum -= deg_sum_drop
            dead = 0
            deg_sum_drop = 0
            rule = apply_degree_two_path_reduction(workspace, u)
            if rule != RULE_IRREDUCIBLE:
                rule_counts[rule] = rule_counts.get(rule, 0) + 1
            continue
        # --- peel the maximum-degree vertex ----------------------------
        u = pop_max_degree()
        if u is None:
            break
        if stop_before_peel:
            # Put the vertex back conceptually: the kernel snapshot below
            # still contains it, so nothing further is needed.
            consumed = False
            break
        alive[u] = 0
        dead += 1
        deg_sum_drop += 2 * deg[u]
        append_entry((PEEL, (u,)))
        for w in adj[xadj[u] : xadj[u + 1]]:
            if alive[w]:
                d = deg[w] - 1
                deg[w] = d
                if d == 1:
                    v1_append(w)
                elif d == 2:
                    v2_append(w)
                elif d == 0:
                    alive[w] = 0
                    dead += 1
                    append_entry((INCLUDE, (w,)))
        peel_count += 1
    workspace._nlive -= dead
    workspace._live_deg_sum -= deg_sum_drop
    if degree_one_count:
        log.bump(STAT_DEGREE_ONE, degree_one_count)
    for rule, count in rule_counts.items():
        log.bump(rule, count)
    if peel_count:
        log.bump(STAT_PEEL, peel_count)
    return consumed


def _run(workspace: Any, stop_before_peel: bool) -> bool:
    """Dispatch to the specialized or the generic reduction loop."""
    if type(workspace) is FlatWorkspace:
        return _reduce_flat(workspace, stop_before_peel)
    if type(workspace) is VecWorkspace:
        return drive_linear_time_vec(workspace, stop_before_peel)
    return _reduce(workspace, stop_before_peel)


def linear_time(
    graph: Graph,
    workspace_factory: Optional[Callable[..., object]] = None,
) -> MISResult:
    """Compute a maximal independent set of ``graph`` with LinearTime.

    ``workspace_factory`` selects the mutable-state backend (default
    :class:`~repro.core.workspace.FlatWorkspace`; pass
    :class:`~repro.core.workspace.ArrayWorkspace` for the list-of-lists
    oracle — both yield identical decision logs).
    """
    start = time.perf_counter()
    telemetry = get_telemetry()  # one global check per run
    factory = FlatWorkspace if workspace_factory is None else workspace_factory
    if telemetry is not None and factory is not VecWorkspace:
        # The vectorized backend is observed at sweep granularity (one
        # ``vec-sweep`` span per batch, with round counters) instead of
        # per-event profile ticks, which would force it onto the scalar
        # generic loop.
        factory = instrumented_factory(factory, telemetry, "LinearTime", graph.name)
    with phase(telemetry, "setup", algorithm="LinearTime", graph=graph.name):
        workspace = factory(graph, track_degree_two=True)
    with phase(telemetry, "reduce", algorithm="LinearTime", graph=graph.name) as span:
        _run(workspace, stop_before_peel=False)
        span.meta["counters"] = dict(workspace.log.stats)
    if telemetry is not None:
        finish_profile(workspace)
        telemetry.add_counters(workspace.log.stats)
        outcome = traced_replay(workspace.log, graph, telemetry, "LinearTime")
    else:
        outcome = workspace.log.replay(graph)
    return MISResult(
        algorithm="LinearTime",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(workspace.log.stats),
        elapsed=time.perf_counter() - start,
    )


def linear_time_reduce(
    graph: Graph,
    workspace_factory: Optional[Callable[..., object]] = None,
) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize ``graph`` with LinearTime's exact rules only (no peeling).

    Returns ``(kernel, old_ids, log)``: the compacted residual graph, the
    map from kernel ids to original ids, and the decision log to replay once
    a solution for the kernel is known.  Used by ARW-LT (Section 6) and the
    Eval-III kernel comparison.
    """
    telemetry = get_telemetry()
    factory = FlatWorkspace if workspace_factory is None else workspace_factory
    if telemetry is not None and factory is not VecWorkspace:
        factory = instrumented_factory(
            factory, telemetry, "LinearTime-reduce", graph.name
        )
    with phase(telemetry, "setup", algorithm="LinearTime-reduce", graph=graph.name):
        workspace = factory(graph, track_degree_two=True)
    with phase(
        telemetry, "reduce", algorithm="LinearTime-reduce", graph=graph.name
    ) as span:
        _run(workspace, stop_before_peel=True)
        span.meta["counters"] = dict(workspace.log.stats)
    if telemetry is not None:
        finish_profile(workspace)
    with phase(telemetry, "kernel-export", algorithm="LinearTime-reduce", graph=graph.name):
        kernel, old_ids = workspace.export_kernel()
    return kernel, old_ids, workspace.log
