"""The ``auto`` backend: per-instance dispatch between flat and vectorized.

The vectorized drivers (:mod:`repro.core.vectorized`) win big on large
reduction-heavy graphs and *lose* on small or peel-dominated ones — numpy
round setup is a fixed cost per frontier sweep, so a G(n, m) graph whose
degree distribution leaves almost nothing for the exact rules pays it over
and over for nothing.  This module packages the dispatch decision:

* :func:`choose_backend_name` inspects two O(n) statistics of the input —
  the vertex count and the fraction of vertices with degree ≤ 2 (the mass
  the degree-one/degree-two rules can start from) — and picks ``"flat"``
  or ``"vectorized"``;
* the per-family size crossovers live in a :class:`Calibration` that can
  be re-measured on the host machine (``repro calibrate``, implemented in
  :mod:`repro.bench.calibrate`) and persisted to
  :func:`calibration_path`;
* :func:`bdone_auto` / :func:`linear_time_auto` / :func:`near_linear_auto`
  are module-level solvers (picklable by reference, like every registry
  entry) that dispatch per input graph — handed to
  :func:`~repro.perf.parallel.solve_by_components_parallel`, each
  *component* gets its own pick.

The legacy backend is never chosen: it is the reference oracle and is
slower than flat on every tracked workload (see ``docs/performance.md``),
so dispatch is a flat/vectorized decision.  When numpy is missing the
answer is always ``"flat"``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..graphs.static_graph import Graph
from ..obs.metrics import METRIC_AUTO_BACKEND_PICKS, get_metrics
from ..obs.telemetry import get_telemetry
from .bdone import bdone
from .linear_time import linear_time
from .near_linear import near_linear
from .result import MISResult
from .vectorized import bdone_vec, linear_time_vec, near_linear_vec

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None  # type: ignore[assignment]

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "bdone_auto",
    "calibration_path",
    "choose_backend_name",
    "linear_time_auto",
    "load_calibration",
    "near_linear_auto",
    "reset_calibration_cache",
]

#: Environment variable overriding the calibration file location (used by
#: tests and by deployments that pin a shared calibration).
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Stat key recording which backend the auto dispatcher picked (value 1).
STAT_AUTO_FLAT = "auto_pick_flat"
STAT_AUTO_VEC = "auto_pick_vectorized"


@dataclass(frozen=True)
class Calibration:
    """Per-machine dispatch thresholds for the ``auto`` backend.

    ``crossover_n`` maps an algorithm family (``"linear_time"``,
    ``"near_linear"``; ``"bdone"`` falls back to ``"linear_time"``, whose
    workspace it shares) to the smallest vertex count at which the
    vectorized driver beats the flat one on reduction-heavy inputs.
    ``min_low_frac`` is the minimum fraction of degree-≤2 vertices for a
    vectorized pick — below it the exact rules have too little to start
    from and the batch sweeps only add overhead (the G(n, m) regime).
    ``source`` records where the numbers came from (``"default"`` or the
    calibration file path) for report provenance.
    """

    crossover_n: Dict[str, int]
    min_low_frac: float = 0.25
    source: str = "default"

    def crossover_for(self, family: str) -> int:
        """The size crossover for ``family`` (bdone → linear_time)."""
        if family in self.crossover_n:
            return self.crossover_n[family]
        if family == "bdone":
            return self.crossover_n.get("linear_time", _DEFAULT_CROSSOVER)
        return _DEFAULT_CROSSOVER

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable dump (inverse of :meth:`from_payload`)."""
        return {
            "version": 1,
            "crossover_n": dict(self.crossover_n),
            "min_low_frac": self.min_low_frac,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object], source: str) -> "Calibration":
        """Rebuild a calibration from a :meth:`to_payload` dump."""
        raw = payload.get("crossover_n", {})
        crossover = {
            str(family): int(value)
            for family, value in raw.items()  # type: ignore[union-attr]
        }
        return cls(
            crossover_n=crossover,
            min_low_frac=float(payload.get("min_low_frac", 0.25)),  # type: ignore[arg-type]
            source=source,
        )


_DEFAULT_CROSSOVER = 3_500

#: Measured on the reference container (see ``docs/performance.md``):
#: LinearTime-vec overtakes flat between web-3k and plr-4k; NearLinear-vec
#: already wins at 3k on skewed graphs but ties flat around 1k.
DEFAULT_CALIBRATION = Calibration(
    crossover_n={"linear_time": 3_500, "near_linear": 2_500},
)

_cached_calibration: Optional[Calibration] = None


def calibration_path() -> str:
    """Where the per-machine calibration file lives.

    ``$REPRO_CALIBRATION`` wins when set; the default is
    ``~/.cache/repro/calibration.json`` (honouring ``$XDG_CACHE_HOME``).
    """
    override = os.environ.get(CALIBRATION_ENV)
    if override:
        return override
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro", "calibration.json")


def load_calibration() -> Calibration:
    """The active calibration: the persisted file if present, else defaults.

    The result is cached for the life of the process (the dispatch check
    runs once per solve; re-reading a JSON file each time would dwarf the
    statistics it feeds).  :func:`reset_calibration_cache` drops the cache
    after a calibration run or an env-var change.
    """
    # Worker-local memo by design: each forked worker re-reads the file
    # once; nothing is published back to the parent.
    global _cached_calibration  # reprolint: disable=RL007
    if _cached_calibration is not None:
        return _cached_calibration
    path = calibration_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        calibration = Calibration.from_payload(payload, source=path)
    except (OSError, ValueError, TypeError, AttributeError):
        calibration = DEFAULT_CALIBRATION
    _cached_calibration = calibration
    return calibration


def reset_calibration_cache() -> None:
    """Forget the cached calibration (next load re-reads the file)."""
    global _cached_calibration
    _cached_calibration = None


def _low_degree_fraction(graph: Graph) -> float:
    """Fraction of vertices with degree ≤ 2 (one O(n) pass)."""
    if graph.n == 0:
        return 0.0
    offsets, _ = graph.flat_csr()
    if _np is not None:
        deg = _np.diff(_np.frombuffer(offsets, dtype=_np.int64))
        return float((deg <= 2).mean())
    low = 0
    for v in range(graph.n):
        if offsets[v + 1] - offsets[v] <= 2:
            low += 1
    return low / graph.n


def choose_backend_name(
    graph: Graph,
    family: str = "linear_time",
    calibration: Optional[Calibration] = None,
) -> str:
    """``"flat"`` or ``"vectorized"`` for running ``family`` on ``graph``.

    Vectorized iff numpy is importable, the graph clears the family's
    calibrated size crossover, and at least ``min_low_frac`` of its
    vertices have degree ≤ 2 (enough reduction mass for the batch rounds
    to amortise their numpy setup).  Anything else — including every
    graph when numpy is absent — runs flat.
    """
    if _np is None:
        return "flat"
    calibration = calibration or load_calibration()
    if graph.n < calibration.crossover_for(family):
        return "flat"
    if _low_degree_fraction(graph) < calibration.min_low_frac:
        return "flat"
    return "vectorized"


def _dispatch(
    graph: Graph,
    family: str,
    flat_solver,
    vec_solver,
    auto_name: str,
) -> MISResult:
    picked = choose_backend_name(graph, family)
    if picked == "vectorized":
        result = vec_solver(graph)
        stat = STAT_AUTO_VEC
    else:
        result = flat_solver(graph)
        stat = STAT_AUTO_FLAT
    stats = dict(result.stats)
    stats[stat] = stats.get(stat, 0) + 1
    telemetry = get_telemetry()
    if telemetry is not None:
        # Free-form record (gets the scoped request/component stamp), so a
        # merged trace can say which backend each request's components ran.
        telemetry.record(
            {
                "type": "backend_pick",
                "algorithm": auto_name,
                "graph": graph.name,
                "n": graph.n,
                "backend": picked,
                "pid": os.getpid(),
            }
        )
    # Meters the common in-process case; inside a forked worker the pick
    # still reaches the parent through the telemetry stamp above, so the
    # lost registry increment is intentional.
    metrics = get_metrics()  # reprolint: disable=RL007
    if metrics is not None:
        metrics.inc(  # reprolint: disable=RL007
            METRIC_AUTO_BACKEND_PICKS, family=family, backend=picked
        )
    return replace(result, algorithm=auto_name, stats=stats)


def bdone_auto(graph: Graph) -> MISResult:
    """BDOne with per-instance backend dispatch (``BDOne-auto``)."""
    return _dispatch(graph, "bdone", bdone, bdone_vec, "BDOne-auto")


def linear_time_auto(graph: Graph) -> MISResult:
    """LinearTime with per-instance backend dispatch (``LinearTime-auto``)."""
    return _dispatch(
        graph, "linear_time", linear_time, linear_time_vec, "LinearTime-auto"
    )


def near_linear_auto(graph: Graph) -> MISResult:
    """NearLinear with per-instance backend dispatch (``NearLinear-auto``)."""
    return _dispatch(
        graph, "near_linear", near_linear, near_linear_vec, "NearLinear-auto"
    )
