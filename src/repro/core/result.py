"""Result type shared by every independent-set algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

__all__ = ["MISResult"]


@dataclass(frozen=True)
class MISResult:
    """The outcome of one independent-set computation.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result (``"BDOne"`` …).
    graph_name:
        Name of the input graph (may be empty).
    independent_set:
        The vertices of the computed independent set.
    upper_bound:
        The Theorem-6.1 bound ``|I| + |R|`` on the independence number
        (``R`` = peeled vertices that did not re-enter the solution).
        For algorithms outside the reducing-peeling framework this is the
        trivial bound ``n``.
    peeled:
        ``|F|`` — how many times the inexact (peeling) reduction fired.
    surviving_peels:
        ``|R| = |F \\ I|`` — peeled vertices absent from the final solution.
    is_exact:
        True when the result is *certified* maximum, i.e. ``R`` is empty
        (Theorem 6.1); always false for algorithms without the certificate.
    stats:
        Per-reduction-rule application counters.
    elapsed:
        Wall-clock seconds spent inside the algorithm.
    """

    algorithm: str
    graph_name: str
    independent_set: FrozenSet[int]
    upper_bound: int
    peeled: int = 0
    surviving_peels: int = 0
    is_exact: bool = False
    stats: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def size(self) -> int:
        """Number of vertices in the independent set."""
        return len(self.independent_set)

    def gap_to(self, independence_number: int) -> int:
        """The paper's "gap" metric: α(G) minus the achieved size."""
        return independence_number - self.size

    def accuracy_to(self, independence_number: Optional[int]) -> float:
        """Achieved size as a fraction of α(G) (1.0 when α is 0)."""
        if not independence_number:
            return 1.0
        return self.size / independence_number

    def __repr__(self) -> str:  # compact, table-friendly
        flag = " exact" if self.is_exact else ""
        return (
            f"<MISResult {self.algorithm} |I|={self.size} "
            f"ub={self.upper_bound}{flag}>"
        )
