"""Result type shared by every independent-set algorithm in the library.

This module also owns the **stat-key registry**: the canonical names of the
per-rule application counters that algorithms report in
:attr:`MISResult.stats`.  Legacy and flat drivers of the same algorithm must
bump the *same* keys (the differential suite asserts the dicts are equal
per graph), so the names live here — dependency-free, importable by every
driver — instead of being scattered as string literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

__all__ = [
    "MISResult",
    "STAT_DEGREE_ONE",
    "STAT_PEEL",
    "STAT_DOMINANCE",
    "STAT_ONE_PASS_DOMINANCE",
    "STAT_LP_INCLUDED",
    "STAT_LP_EXCLUDED",
    "STAT_DEGREE_TWO_ISOLATION",
    "STAT_DEGREE_TWO_FOLDING",
    "STAT_PATH_CYCLE",
    "STAT_PATH_ANCHOR_SHARED",
    "STAT_PATH_ODD_EDGE",
    "STAT_PATH_ODD_NO_EDGE",
    "STAT_PATH_EVEN_EDGE",
    "STAT_PATH_EVEN_NO_EDGE",
    "STAT_TWIN",
    "STAT_UNCONFINED",
    "STAT_ROUNDS",
    "STAT_KERNEL_SIZE",
    "STAT_ONE_K_GAIN",
    "STAT_TWO_K_GAIN",
    "STAT_PASSES",
    "STAT_SERVE_CACHE_HIT",
    "STAT_SERVE_CACHE_MISS",
    "STAT_SERVE_REPAIR",
    "STAT_SERVE_REPAIR_VERTICES",
    "STAT_SERVE_REPAIR_COMPONENTS",
    "STAT_SERVE_FULL_RESOLVE",
    "STAT_SERVE_STALE_RETURN",
    "STAT_SERVE_MUTATIONS",
    "KNOWN_STAT_KEYS",
    "SOLVER_STAT_KEYS",
    "SERVE_STAT_KEYS",
    "ALL_STAT_KEYS",
]

# ---------------------------------------------------------------------------
# Stat-key registry (one canonical spelling per reduction rule)
# ---------------------------------------------------------------------------
STAT_DEGREE_ONE = "degree-one"
STAT_PEEL = "peel"
STAT_DOMINANCE = "dominance"
STAT_ONE_PASS_DOMINANCE = "one-pass-dominance"
STAT_LP_INCLUDED = "lp-included"
STAT_LP_EXCLUDED = "lp-excluded"
STAT_DEGREE_TWO_ISOLATION = "degree-two-isolation"
STAT_DEGREE_TWO_FOLDING = "degree-two-folding"
# The Lemma 4.1 path cases; :mod:`repro.core.degree_two_paths` re-exports
# these under its historical ``RULE_*`` names.
STAT_PATH_CYCLE = "path:cycle"
STAT_PATH_ANCHOR_SHARED = "path:v-equals-w"
STAT_PATH_ODD_EDGE = "path:odd-edge"
STAT_PATH_ODD_NO_EDGE = "path:odd-no-edge"
STAT_PATH_EVEN_EDGE = "path:even-edge"
STAT_PATH_EVEN_NO_EDGE = "path:even-no-edge"
# Counters emitted outside the reducing-peeling framework proper: the exact
# vertex-cover solver's extra reductions and the baselines' progress meters.
STAT_TWIN = "twin"
STAT_UNCONFINED = "unconfined"
STAT_ROUNDS = "rounds"
STAT_KERNEL_SIZE = "kernel_size"
STAT_ONE_K_GAIN = "one-k-gain"
STAT_TWO_K_GAIN = "two-k-gain"
STAT_PASSES = "passes"
# Counters emitted by the serving layer (:mod:`repro.serve`): cache traffic,
# localized-repair scope, and graceful-degradation events.
STAT_SERVE_CACHE_HIT = "serve:cache-hit"
STAT_SERVE_CACHE_MISS = "serve:cache-miss"
STAT_SERVE_REPAIR = "serve:repair"
STAT_SERVE_REPAIR_VERTICES = "serve:repair-vertices"
STAT_SERVE_REPAIR_COMPONENTS = "serve:repair-components"
STAT_SERVE_FULL_RESOLVE = "serve:full-resolve"
STAT_SERVE_STALE_RETURN = "serve:stale-return"
STAT_SERVE_MUTATIONS = "serve:mutations"

#: Every counter key a reducing-peeling driver may emit.  Baselines and the
#: exact solver add their own (``rounds``, ``twin``, …); this set covers the
#: framework algorithms, whose flat/legacy backends must agree key-for-key.
KNOWN_STAT_KEYS = frozenset(
    {
        STAT_DEGREE_ONE,
        STAT_PEEL,
        STAT_DOMINANCE,
        STAT_ONE_PASS_DOMINANCE,
        STAT_LP_INCLUDED,
        STAT_LP_EXCLUDED,
        STAT_DEGREE_TWO_ISOLATION,
        STAT_DEGREE_TWO_FOLDING,
        STAT_PATH_CYCLE,
        STAT_PATH_ANCHOR_SHARED,
        STAT_PATH_ODD_EDGE,
        STAT_PATH_ODD_NO_EDGE,
        STAT_PATH_EVEN_EDGE,
        STAT_PATH_EVEN_NO_EDGE,
    }
)

#: Keys emitted by the exact solver and the baselines (outside the
#: flat/legacy parity contract, hence a separate set).
SOLVER_STAT_KEYS = frozenset(
    {
        STAT_TWIN,
        STAT_UNCONFINED,
        STAT_ROUNDS,
        STAT_KERNEL_SIZE,
        STAT_ONE_K_GAIN,
        STAT_TWO_K_GAIN,
        STAT_PASSES,
    }
)

#: Keys emitted by the serving layer's telemetry counters and request
#: accounting (:mod:`repro.serve`); separate from the framework sets because
#: they describe service behaviour, not reduction-rule applications.
SERVE_STAT_KEYS = frozenset(
    {
        STAT_SERVE_CACHE_HIT,
        STAT_SERVE_CACHE_MISS,
        STAT_SERVE_REPAIR,
        STAT_SERVE_REPAIR_VERTICES,
        STAT_SERVE_REPAIR_COMPONENTS,
        STAT_SERVE_FULL_RESOLVE,
        STAT_SERVE_STALE_RETURN,
        STAT_SERVE_MUTATIONS,
    }
)

#: The full registry reprolint's RL003 checks stat-key writes against.
ALL_STAT_KEYS = KNOWN_STAT_KEYS | SOLVER_STAT_KEYS | SERVE_STAT_KEYS


@dataclass(frozen=True)
class MISResult:
    """The outcome of one independent-set computation.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result (``"BDOne"`` …).
    graph_name:
        Name of the input graph (may be empty).
    independent_set:
        The vertices of the computed independent set.
    upper_bound:
        The Theorem-6.1 bound ``|I| + |R|`` on the independence number
        (``R`` = peeled vertices that did not re-enter the solution).
        For algorithms outside the reducing-peeling framework this is the
        trivial bound ``n``.
    peeled:
        ``|F|`` — how many times the inexact (peeling) reduction fired.
    surviving_peels:
        ``|R| = |F \\ I|`` — peeled vertices absent from the final solution.
    is_exact:
        True when the result is *certified* maximum, i.e. ``R`` is empty
        (Theorem 6.1); always false for algorithms without the certificate.
    stats:
        Per-reduction-rule application counters.
    elapsed:
        Wall-clock seconds spent inside the algorithm.
    """

    algorithm: str
    graph_name: str
    independent_set: FrozenSet[int]
    upper_bound: int
    peeled: int = 0
    surviving_peels: int = 0
    is_exact: bool = False
    stats: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def size(self) -> int:
        """Number of vertices in the independent set."""
        return len(self.independent_set)

    def gap_to(self, independence_number: int) -> int:
        """The paper's "gap" metric: α(G) minus the achieved size."""
        return independence_number - self.size

    def accuracy_to(self, independence_number: Optional[int]) -> float:
        """Achieved size as a fraction of α(G) (1.0 when α is 0)."""
        if not independence_number:
            return 1.0
        return self.size / independence_number

    def __repr__(self) -> str:  # compact, table-friendly
        flag = " exact" if self.is_exact else ""
        return (
            f"<MISResult {self.algorithm} |I|={self.size} "
            f"ub={self.upper_bound}{flag}>"
        )
