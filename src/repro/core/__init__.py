"""The paper's primary contribution: the Reducing-Peeling framework.

Public surface:

* the four algorithms — :func:`bdone`, :func:`bdtwo`, :func:`linear_time`,
  :func:`near_linear` — all returning :class:`MISResult`;
* :func:`compute_independent_set` / :data:`ALGORITHMS` name-based dispatch;
* :func:`kernelize` + :class:`KernelResult` for the Reducing-only mode;
* the stand-alone reduction rules in :mod:`repro.core.reductions` and the
  LP reduction in :mod:`repro.core.lp_reduction`;
* the Theorem-6.1 upper-bound helpers.
"""

from .auto import (
    Calibration,
    bdone_auto,
    choose_backend_name,
    linear_time_auto,
    near_linear_auto,
)
from .bdone import bdone
from .bdtwo import bdtwo
from .components import affected_region, solve_by_components, touched_components
from .dominance import TriangleWorkspace
from .flat_dominance import FlatTriangleWorkspace
from .framework import ALGORITHMS, compute_independent_set
from .hotpath import hot_loop
from .kernel import KERNEL_METHODS, KernelResult, kernelize
from .linear_time import linear_time, linear_time_reduce
from .lp_reduction import LPReductionResult, lp_reduction, lp_upper_bound
from .near_linear import near_linear, near_linear_reduce
from .result import MISResult
from .upper_bound import certify_maximum, reducing_peeling_upper_bound
from .vectorized import (
    VecWorkspace,
    bdone_vec,
    linear_time_vec,
    linear_time_vec_reduce,
    near_linear_vec,
    near_linear_vec_reduce,
    vectorized_one_pass_dominance,
)
from .vertex_cover import VCResult, minimum_vertex_cover
from .workspace import ArrayWorkspace, FlatWorkspace

__all__ = [
    "ALGORITHMS",
    "ArrayWorkspace",
    "Calibration",
    "affected_region",
    "touched_components",
    "FlatTriangleWorkspace",
    "FlatWorkspace",
    "KERNEL_METHODS",
    "TriangleWorkspace",
    "KernelResult",
    "LPReductionResult",
    "MISResult",
    "VCResult",
    "bdone",
    "bdone_auto",
    "bdtwo",
    "certify_maximum",
    "choose_backend_name",
    "compute_independent_set",
    "hot_loop",
    "kernelize",
    "minimum_vertex_cover",
    "solve_by_components",
    "VecWorkspace",
    "bdone_vec",
    "linear_time",
    "linear_time_auto",
    "linear_time_reduce",
    "linear_time_vec",
    "linear_time_vec_reduce",
    "lp_reduction",
    "lp_upper_bound",
    "near_linear",
    "near_linear_auto",
    "near_linear_reduce",
    "near_linear_vec",
    "near_linear_vec_reduce",
    "reducing_peeling_upper_bound",
    "vectorized_one_pass_dominance",
]
