"""Decision logging and solution reconstruction for reducing-peeling runs.

Every algorithm in the framework makes three kinds of *final* decisions while
the graph shrinks (include / exclude / peel) plus two kinds of *deferred*
decisions whose resolution must wait until the rest of the graph is solved:

* **path entries** (Algorithm 4 Line 7) — vertices removed by a degree-two
  path reduction; popped in reverse push order, each is added to the solution
  exactly when none of its original neighbours made it in;
* **fold records** (Lemma 2.2(2) backtrack, Algorithm 3 Line 6) — a folded
  triple ``{u, v, w}`` whose supervertex reuses id ``w``; on replay, ``w`` in
  the solution means ``v`` joins it too, otherwise ``u`` does.

:class:`DecisionLog` records all five in one chronological list; replaying it
backwards resolves the deferred decisions in the correct dependency order,
after which the solution is extended to a maximal independent set
(Algorithm 1 Line 6).
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, List, Sequence, Tuple

from ..graphs.static_graph import Graph

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional for replay
    _np = None  # type: ignore[assignment]

#: Below this many vertices the numpy prefilter in
#: :func:`extend_to_maximal` costs more than the scalar pass it saves.
_EXTEND_VEC_MIN_N = 2048

__all__ = [
    "DecisionLog",
    "ReplayOutcome",
    "extend_to_maximal",
    "INCLUDE",
    "EXCLUDE",
    "PEEL",
    "PATH",
    "FOLD",
]

#: Entry kinds, public so the specialized flat-buffer drivers can append
#: entries directly (one tuple per decision) instead of paying a method
#: call per reduction; :meth:`DecisionLog.replay` is the only consumer.
INCLUDE = 0
EXCLUDE = 1
PEEL = 2
PATH = 3
FOLD = 4

_INCLUDE = INCLUDE
_EXCLUDE = EXCLUDE
_PEEL = PEEL
_PATH = PATH
_FOLD = FOLD


class ReplayOutcome:
    """The reconstructed solution plus the Theorem-6.1 bookkeeping."""

    __slots__ = ("in_set", "peeled", "surviving_peels")

    def __init__(self, in_set: List[bool], peeled: int, surviving_peels: int) -> None:
        self.in_set = in_set
        self.peeled = peeled
        self.surviving_peels = surviving_peels

    @property
    def vertices(self) -> frozenset:
        """The solution as a frozenset of vertex ids."""
        return frozenset(compress(range(len(self.in_set)), self.in_set))

    @property
    def upper_bound(self) -> int:
        """``|I| + |R|`` — the Theorem-6.1 upper bound on α(G)."""
        return sum(self.in_set) + self.surviving_peels

    @property
    def is_exact(self) -> bool:
        """Whether the solution is certified maximum (``R`` empty)."""
        return self.surviving_peels == 0


def extend_to_maximal(in_set: List[bool], graph: Graph) -> None:
    """Extend ``in_set`` to a maximal independent set, in place.

    Greedy id-order pass over the flat CSR buffers (Algorithm 1 Line 6):
    per-vertex neighbourhood-tuple materialisation would dominate replay on
    large graphs.  This is also where peeled vertices get their chance to
    re-enter the solution and stop counting against the Theorem-6.1 bound.
    """
    offsets, targets = graph.flat_csr()
    if _np is not None and graph.n >= _EXTEND_VEC_MIN_N:
        # Prefilter: any vertex already blocked by the *initial* solution
        # can never enter (the pass only adds vertices), so one bincount
        # sweep removes it from consideration.  Survivors run the exact
        # scalar greedy below against the live ``in_set``, so the result
        # is byte-identical to the pure scan — typically over a scaffold
        # of a few percent of n.
        np = _np
        xadj = np.frombuffer(offsets, dtype=np.int64)
        if len(targets):
            adj = np.frombuffer(targets, dtype=np.int32)
        else:
            adj = np.zeros(0, dtype=np.int32)
        flags = np.frombuffer(bytearray(in_set), dtype=np.uint8)
        slot_rows = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(xadj))
        blocked = np.bincount(slot_rows[flags[adj] != 0], minlength=graph.n) > 0
        candidates = np.flatnonzero((flags == 0) & ~blocked).tolist()
        for v in candidates:
            for i in range(offsets[v], offsets[v + 1]):
                if in_set[targets[i]]:
                    break
            else:
                in_set[v] = True
        return
    for v in range(graph.n):
        if in_set[v]:
            continue
        for i in range(offsets[v], offsets[v + 1]):
            if in_set[targets[i]]:
                break
        else:
            in_set[v] = True


class DecisionLog:
    """Chronological record of reducing-peeling decisions."""

    __slots__ = ("_entries", "stats")

    def __init__(self) -> None:
        self._entries: List[Tuple[int, Tuple[int, ...]]] = []
        self.stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def include(self, v: int) -> None:
        """Vertex ``v`` is definitively in the independent set."""
        self._entries.append((_INCLUDE, (v,)))

    def exclude(self, v: int) -> None:
        """Vertex ``v`` was removed by an exact rule (not in the set)."""
        self._entries.append((_EXCLUDE, (v,)))

    def peel(self, v: int) -> None:
        """Vertex ``v`` was removed by the inexact (peeling) reduction."""
        self._entries.append((_PEEL, (v,)))

    def push_path(self, v: int, blocker_a: int, blocker_b: int) -> None:
        """Defer vertex ``v`` of a reduced degree-two path (stack entry).

        ``blocker_a`` / ``blocker_b`` are ``v``'s two *live* neighbours at
        removal time (path predecessor/successor or an anchor).  Replay
        adds ``v`` exactly when neither blocker made it into the solution —
        checking the live neighbourhood rather than the full original one
        keeps the Lemma 4.1 alternation exact even after earlier rewirings
        retired some of ``v``'s original edges.
        """
        self._entries.append((_PATH, (v, blocker_a, blocker_b)))

    def fold(self, u: int, v: int, w: int) -> None:
        """Record the folding of degree-two vertex ``u`` with neighbours
        ``v`` and ``w``; the supervertex survives under id ``w``."""
        self._entries.append((_FOLD, (u, v, w)))

    def bump(self, rule: str, amount: int = 1) -> None:
        """Increment the application counter for ``rule``."""
        self.stats[rule] = self.stats.get(rule, 0) + amount

    def extend_mapped(self, other: "DecisionLog", id_map: Sequence[int]) -> None:
        """Append another log's entries with vertex ids translated.

        Used when an algorithm ran on a compacted subgraph: ``id_map[x]``
        is the original id of subgraph vertex ``x``.  Stats are merged.
        """
        append = self._entries.append
        get = id_map.__getitem__
        for kind, data in other._entries:
            if len(data) == 1:
                # Singleton entries dominate; building the pair directly
                # skips a generator + tuple() round-trip per entry.
                append((kind, (get(data[0]),)))
            else:
                append((kind, tuple(map(get, data))))
        for rule, amount in other.stats.items():
            self.bump(rule, amount)

    def copy(self) -> "DecisionLog":
        """An independent copy (entries and stats)."""
        clone = DecisionLog()
        clone._entries = list(self._entries)
        clone.stats = dict(self.stats)
        return clone

    # ------------------------------------------------------------------
    # Serialisation (service snapshots)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """A JSON-serialisable dump of the log (entries + stats).

        Entry tuples become ``[kind, [vertices...]]`` lists; the inverse is
        :meth:`from_payload`.  Used by :mod:`repro.serve` snapshots to
        persist register-time kernelization state across process restarts.
        """
        return {
            "entries": [[kind, list(data)] for kind, data in self._entries],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DecisionLog":
        """Rebuild a log previously dumped with :meth:`to_payload`."""
        log = cls()
        log._entries = [
            (int(kind), tuple(int(v) for v in data))
            for kind, data in payload.get("entries", [])  # type: ignore[union-attr]
        ]
        log.stats = {
            str(rule): int(amount)
            for rule, amount in payload.get("stats", {}).items()  # type: ignore[union-attr]
        }
        return log

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """The raw chronological entry list ``[(kind, vertex-tuple), …]``.

        Exposed for the specialized drivers (which append to it directly in
        their hot loops) and for differential tests that assert two backends
        made byte-identical decision sequences.  Treat as append-only.
        """
        return self._entries

    @property
    def peel_count(self) -> int:
        """How many peel entries were recorded."""
        return sum(1 for kind, _ in self._entries if kind == _PEEL)

    @property
    def alpha_offset(self) -> int:
        """``α(original) − α(residual)``, valid when only exact rules ran.

        Each include contributes 1, each fold contributes 1, and every
        degree-two path application contributes half its pushed vertices
        (case 3 pushes ``|P| − 1`` vertices worth ``(|P| − 1)/2``; cases
        4/5 push ``|P|`` worth ``|P|/2`` — always exactly half).  Peels
        void the equality (they only guarantee ≥), so callers must check
        :attr:`peel_count` is zero before relying on this.
        """
        includes = folds = paths = 0
        for kind, _ in self._entries:
            if kind == _INCLUDE:
                includes += 1
            elif kind == _FOLD:
                folds += 1
            elif kind == _PATH:
                paths += 1
        return includes + folds + paths // 2

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def resolve(self, n: int) -> Tuple[List[bool], List[int]]:
        """Steps 1–2 of replay: commit includes, resolve deferred entries.

        Returns ``(in_set, peeled_vertices)`` *before* maximal extension —
        the telemetry-traced drivers run this and
        :func:`extend_to_maximal` under separate phase spans.
        """
        in_set = [False] * n
        peeled_vertices: List[int] = []
        # One forward pass commits includes and collects the (typically
        # few) deferred entries; only those replay backwards — their
        # relative order is chronological, so ``reversed`` sees them in
        # the same order a full backward walk of the log would.
        deferred: List[Tuple[int, Tuple[int, ...]]] = []
        for kind, data in self._entries:
            if kind == _INCLUDE:
                in_set[data[0]] = True
            elif kind == _PEEL:
                peeled_vertices.append(data[0])
            elif kind == _PATH or kind == _FOLD:
                deferred.append((kind, data))
        for kind, data in reversed(deferred):
            if kind == _PATH:
                v, blocker_a, blocker_b = data
                if not in_set[blocker_a] and not in_set[blocker_b]:
                    in_set[v] = True
            else:
                u, v, w = data
                if in_set[w]:
                    in_set[v] = True
                else:
                    in_set[u] = True
        return in_set, peeled_vertices

    def replay(self, graph: Graph, extend_maximal: bool = True) -> ReplayOutcome:
        """Reconstruct the independent set on the *original* graph.

        Processing order (mirrors the paper):

        1. commit all ``include`` decisions;
        2. walk the log backwards resolving path entries and fold records
           (Algorithm 4 Line 7 / Algorithm 3 Line 6);
        3. optionally extend to a maximal independent set, which also gives
           peeled vertices their chance to re-enter (Algorithm 1 Line 6).
        """
        in_set, peeled_vertices = self.resolve(graph.n)
        if extend_maximal:
            extend_to_maximal(in_set, graph)
        surviving = sum(1 for v in peeled_vertices if not in_set[v])
        return ReplayOutcome(in_set, len(peeled_vertices), surviving)
