"""Degree-two path reductions (paper Section 4, Lemma 4.1).

A *degree-two path* is a path whose every vertex has degree two; a maximal
one ends, on both sides, at vertices of degree ≥ 3 (after degree-one
vertices have been drained).  Lemma 4.1 reduces a maximal path
``P = (v₁ … v_l)`` with outside anchors ``v`` (next to ``v₁``) and ``w``
(next to ``v_l``) in five cases, plus the degree-two cycle case:

* **cycle** — remove an arbitrary cycle vertex (Figure 4(a));
* **case 1**, ``v = w`` — remove ``v`` (Figure 4(a));
* **case 2**, ``|P|`` odd and ``(v, w) ∈ E`` — remove ``v`` and ``w``
  (Figure 4(b));
* **case 3**, ``|P|`` odd and ``(v, w) ∉ E`` — remove ``v₂ … v_l``, add the
  edge ``(v₁, w)`` (Figure 4(c));
* **case 4**, ``|P|`` even and ``(v, w) ∈ E`` — remove all of ``P``
  (Figure 4(d));
* **case 5**, ``|P|`` even and ``(v, w) ∉ E`` — remove all of ``P``, add the
  edge ``(v, w)`` (Figure 4(e)).

The removed interior vertices go onto the reconstruction stack (pushed so
that pops run *away* from the anchor whose fate is decided first); the added
edges are realised by in-place rewiring so adjacency arrays never grow.

The single irreducible situation — ``|P| = 1`` with non-adjacent degree-≥3
anchors — is skipped, exactly as discussed in the paper's Appendix A.2 (it
is the one configuration only BDTwo's folding handles).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .hotpath import hot_loop
from .result import (
    STAT_PATH_ANCHOR_SHARED,
    STAT_PATH_CYCLE,
    STAT_PATH_EVEN_EDGE,
    STAT_PATH_EVEN_NO_EDGE,
    STAT_PATH_ODD_EDGE,
    STAT_PATH_ODD_NO_EDGE,
)

__all__ = [
    "PathDiscovery",
    "find_maximal_degree_two_path",
    "apply_degree_two_path_reduction",
    "RULE_CYCLE",
    "RULE_ANCHOR_SHARED",
    "RULE_ODD_EDGE",
    "RULE_ODD_NO_EDGE",
    "RULE_EVEN_EDGE",
    "RULE_EVEN_NO_EDGE",
    "RULE_IRREDUCIBLE",
]

# Historical names for the Lemma 4.1 cases; the canonical spellings live in
# the stat-key registry (:mod:`repro.core.result`) so the counter dicts of
# every backend agree key-for-key.
RULE_CYCLE = STAT_PATH_CYCLE
RULE_ANCHOR_SHARED = STAT_PATH_ANCHOR_SHARED
RULE_ODD_EDGE = STAT_PATH_ODD_EDGE
RULE_ODD_NO_EDGE = STAT_PATH_ODD_NO_EDGE
RULE_EVEN_EDGE = STAT_PATH_EVEN_EDGE
RULE_EVEN_NO_EDGE = STAT_PATH_EVEN_NO_EDGE
RULE_IRREDUCIBLE = "path:irreducible"


class PathDiscovery:
    """The outcome of walking the maximal degree-two path through a vertex.

    Attributes
    ----------
    path:
        The degree-two vertices in path order (for a cycle: cycle order).
    v, w:
        The outside anchors adjacent to ``path[0]`` / ``path[-1]``
        (``None`` for a cycle).
    is_cycle:
        Whether the structure is a degree-two cycle.
    """

    __slots__ = ("path", "v", "w", "is_cycle")

    @hot_loop
    def __init__(
        self, path: List[int], v: Optional[int], w: Optional[int], is_cycle: bool
    ) -> None:
        self.path = path
        self.v = v
        self.w = w
        self.is_cycle = is_cycle


@hot_loop
def _walk(workspace: Any, start: int, first: int) -> Tuple[List[int], Optional[int]]:
    """Walk from ``start`` through ``first`` along degree-two vertices.

    Returns ``(interior, anchor)`` where ``anchor`` is the first vertex of
    degree ≠ 2 encountered, or ``None`` if the walk returned to ``start``
    (i.e. the structure is a cycle).
    """
    deg = workspace.deg
    iter_live_neighbors = workspace.iter_live_neighbors
    interior: List[int] = []
    append = interior.append
    prev, cur = start, first
    while deg[cur] == 2:
        if cur == start:
            return interior, None
        append(cur)
        for nxt in iter_live_neighbors(cur):
            if nxt != prev:
                prev, cur = cur, nxt
                break
        else:  # pendant cycle end: both live neighbours equal prev (C2 impossible)
            return interior, prev
    return interior, cur


@hot_loop
def find_maximal_degree_two_path(workspace: Any, u: int) -> PathDiscovery:
    """Discover the maximal degree-two path or cycle containing ``u``.

    ``u`` must be live with exactly two live neighbours.  Works on any
    workspace exposing ``deg`` and ``iter_live_neighbors``; runs in time
    linear in the path length (the DFS of Section 4).
    """
    neighbors = list(workspace.iter_live_neighbors(u))
    first, second = neighbors[0], neighbors[1]
    left, left_anchor = _walk(workspace, u, first)
    if left_anchor is None:
        return PathDiscovery([u] + left, None, None, True)
    right, right_anchor = _walk(workspace, u, second)
    path = list(reversed(left)) + [u] + right
    return PathDiscovery(path, left_anchor, right_anchor, False)


@hot_loop
def apply_degree_two_path_reduction(workspace: Any, u: int) -> str:
    """Apply Lemma 4.1 to the maximal path/cycle through ``u``.

    ``workspace`` is either an :class:`~repro.core.workspace.ArrayWorkspace`
    (LinearTime) or a :class:`~repro.core.dominance.TriangleWorkspace`
    (NearLinear) — both expose the same mutation protocol, the latter with
    triangle-count maintenance behind it.

    Returns the name of the rule case applied (one of the ``RULE_*``
    constants); :data:`RULE_IRREDUCIBLE` means nothing changed.

    The vectorized backend runs a mutation-for-mutation equivalent twin
    (:func:`repro.core.vec_paths._reduce_one`) that batches the interior
    removals and caches neighbour pairs; any change to the case logic or
    the push order here must land there too — the differential suite
    (``tests/core/test_vec_paths.py``) asserts the two stay
    entry-for-entry identical.
    """
    discovery = find_maximal_degree_two_path(workspace, u)
    path = discovery.path
    if discovery.is_cycle:
        workspace.delete_vertex(u, "exclude")
        return RULE_CYCLE
    v, w = discovery.v, discovery.w
    if v == w:
        workspace.delete_vertex(v, "exclude")
        return RULE_ANCHOR_SHARED
    length = len(path)
    head, tail = path[0], path[-1]
    if length % 2 == 1:
        if workspace.has_live_edge(v, w):
            workspace.delete_vertex(v, "exclude")
            workspace.delete_vertex(w, "exclude")
            return RULE_ODD_EDGE
        if length == 1:
            # Both anchors have degree ≥ 3 and are non-adjacent: the one
            # configuration path reductions cannot handle (Appendix A.2).
            return RULE_IRREDUCIBLE
        # Case 3: keep v₁, drop v₂ … v_l, rewire (v₁, w) into existence.
        # Rewiring happens first, while the retired entries are still
        # present in their rows, so every backend replaces the entry *in
        # position* (dict rebuild / slot overwrite) and the backends'
        # adjacency iteration orders stay aligned.  Stack push order
        # v_l … v₂ makes pops run v₂ → v_l, so each popped vertex sees its
        # path predecessor already decided.  Each pushed vertex records its
        # two live neighbours (path chain + anchor).
        workspace.rewire(head, path[1], w)
        workspace.rewire(w, tail, head)
        chain = [v] + path + [w]
        remove_silently = workspace.remove_silently
        push_path = workspace.log.push_path
        for i in range(length - 1, 0, -1):  # path[length-1] … path[1]
            x = path[i]
            remove_silently(x)
            push_path(x, chain[i], chain[i + 2])
        workspace.refile(head)  # still degree two: future paths start here
        return RULE_ODD_NO_EDGE
    chain = [v] + path + [w]
    remove_silently = workspace.remove_silently
    push_path = workspace.log.push_path
    if workspace.has_live_edge(v, w):
        # Case 4: remove the whole path; anchors each lose one edge.
        for i in range(length - 1, -1, -1):
            x = path[i]
            remove_silently(x)
            push_path(x, chain[i], chain[i + 2])
        workspace.decrement_degree(v)
        workspace.decrement_degree(w)
        return RULE_EVEN_EDGE
    # Case 5: remove the whole path and rewire (v, w) into existence;
    # anchor degrees are unchanged (each trades a path endpoint for the
    # opposite anchor).  Rewire first — see case 3 — so the replacement
    # lands in the retired entry's position on every backend.
    workspace.rewire(v, head, w)
    workspace.rewire(w, tail, v)
    for i in range(length - 1, -1, -1):
        x = path[i]
        remove_silently(x)
        push_path(x, chain[i], chain[i + 2])
    workspace.settle_new_edge(v, w)
    return RULE_EVEN_NO_EDGE
