"""Dominance reduction machinery (paper Section 5).

Vertex ``v`` *dominates* its neighbour ``u`` when ``N(v) \\ {u} ⊆ N(u)``
(Lemma 5.1); a dominated vertex can be removed without changing α.  Checking
dominance incrementally hinges on Lemma 5.2:

    ``v`` dominates ``u``  ⇔  δ(v, u) = d(v) − 1,

where δ is the per-edge triangle count.  :class:`TriangleWorkspace` keeps
the adjacency structure as dict-of-dicts ``tri[u][v] = δ(u, v)`` (the 4m +
O(n) representation of Table 1), maintains the counts under vertex deletion
and path rewiring, and feeds the worklist ``D`` of dominance candidates.

:func:`one_pass_dominance` is the degree-decreasing prefilter the paper runs
first to shrink Δ in O(m · a(G)) time.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..graphs.static_graph import Graph
from .bucket_queue import MaxDegreeSelector
from .trace import DecisionLog
from .workspace import compact_remap

__all__ = ["TriangleWorkspace", "one_pass_dominance"]


def one_pass_dominance(graph: Graph) -> List[int]:
    """One sweep of the dominance reduction in degree-decreasing order.

    Returns the list of removed (dominated) vertices.  Scanning vertices
    from high to low degree and only considering dominators of currently
    smaller-or-equal degree bounds the work by
    ``Σ_(u,v)∈E min(d(u), d(v)) = O(m · a(G))`` (Section 5).
    """
    adjacency = graph.adjacency_sets()
    degree = graph.degrees()
    alive = bytearray([1]) * graph.n if graph.n else bytearray()
    order = sorted(range(graph.n), key=lambda v: -degree[v])
    removed: List[int] = []
    for u in order:
        if not alive[u]:
            continue
        for v in adjacency[u]:
            if degree[v] > degree[u]:
                continue
            # v dominates u iff every other neighbour of v is adjacent to u.
            u_adjacency = adjacency[u]
            if all(x == u or x in u_adjacency for x in adjacency[v]):
                alive[u] = 0
                removed.append(u)
                for x in adjacency[u]:
                    adjacency[x].discard(u)
                    degree[x] -= 1
                adjacency[u] = set()
                degree[u] = 0
                break
    return removed


class TriangleWorkspace:
    """Mutable graph state with per-edge triangle counts for NearLinear.

    The adjacency structure is ``tri[u]: dict[neighbour, triangle count]``;
    ``deg[u] == len(tri[u])`` is kept in a parallel list so the bucket
    selector can share it.  The worklist ``dominated`` holds dominance
    *candidates*; Algorithm 5 Line 8 re-checks each candidate on pop
    because mutual dominance can invalidate stale entries (Appendix A.3,
    Figure 14).
    """

    __slots__ = (
        "graph",
        "n",
        "tri",
        "deg",
        "alive",
        "log",
        "v1",
        "v2",
        "dominated",
        "_selector",
        "_nlive",
        "_live_deg_sum",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.n = graph.n
        self.tri: List[dict] = [dict.fromkeys(graph.neighbors(v), 0) for v in range(graph.n)]
        self.deg: List[int] = graph.degrees()
        self.alive = bytearray([1]) * graph.n if graph.n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self.dominated: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        self._nlive = self.n
        self._live_deg_sum = 2 * graph.m
        self._count_triangles()
        for v in range(self.n):
            d = self.deg[v]
            if d == 0:
                self.alive[v] = 0
                self._nlive -= 1
                self.log.include(v)
            elif d == 1:
                self.v1.append(v)
            elif d == 2:
                self.v2.append(v)
        self._seed_dominated()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _count_triangles(self) -> None:
        """Fill δ(u, v) for every edge.

        Uses the sparse-matrix identity ``δ = (A² ∘ A)`` when scipy is
        available (an order of magnitude faster on dense cores), falling
        back to ordered neighbourhood merging otherwise.
        """
        if self._count_triangles_scipy():
            return
        self._count_triangles_python()

    def _count_triangles_scipy(self) -> bool:
        try:
            import numpy
            from scipy import sparse
        except ImportError:  # pragma: no cover - scipy is present in CI
            return False
        if self.n == 0:
            return True
        offsets, targets = self.graph.csr_arrays()
        indptr = numpy.asarray(offsets, dtype=numpy.int64)
        indices = numpy.asarray(targets, dtype=numpy.int64)
        data = numpy.ones(len(indices), dtype=numpy.int64)
        adjacency = sparse.csr_matrix((data, indices, indptr), shape=(self.n, self.n))
        counts = (adjacency @ adjacency).multiply(adjacency).tocsr()
        counts_indptr = counts.indptr
        counts_indices = counts.indices
        counts_data = counts.data
        tri = self.tri
        for u in range(self.n):
            row = tri[u]
            for position in range(counts_indptr[u], counts_indptr[u + 1]):
                row[int(counts_indices[position])] = int(counts_data[position])
        return True

    def _count_triangles_python(self) -> None:
        graph = self.graph
        deg = self.deg
        rank = sorted(range(self.n), key=lambda v: (deg[v], v))
        position = [0] * self.n
        for pos, v in enumerate(rank):
            position[v] = pos
        forward: List[List[int]] = [[] for _ in range(self.n)]
        for u in range(self.n):
            for v in graph.neighbors(u):
                if position[v] > position[u]:
                    forward[u].append(v)
        forward_sets = [set(row) for row in forward]
        tri = self.tri
        for u in range(self.n):
            row = forward[u]
            for i, v in enumerate(row):
                for w in row[i + 1 :]:
                    if w in forward_sets[v] or v in forward_sets[w]:
                        tri[u][v] += 1
                        tri[v][u] += 1
                        tri[u][w] += 1
                        tri[w][u] += 1
                        tri[v][w] += 1
                        tri[w][v] += 1

    def _seed_dominated(self) -> None:
        """Initial worklist D = {u | ∃ (v,u) ∈ E with δ(v,u) = d(v) − 1}."""
        deg = self.deg
        for v in range(self.n):
            if not self.alive[v]:
                continue
            target = deg[v] - 1
            for u, count in self.tri[v].items():
                if count == target:
                    self.dominated.append(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """Current neighbours of ``v`` (eager structure: all live)."""
        return list(self.tri[v])

    def iter_live_neighbors(self, v: int) -> Iterable[int]:
        """Iterator over current neighbours of ``v``."""
        return iter(self.tri[v])

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` currently exists (O(1) dict probe)."""
        return v in self.tri[u]

    def is_dominated(self, u: int) -> bool:
        """Re-check: is ``u`` currently dominated by some neighbour?"""
        deg = self.deg
        for v, count in self.tri[u].items():
            if count == deg[v] - 1:
                return True
        return False

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices (O(1), counter-maintained)."""
        return self._nlive

    def live_edge_count(self) -> int:
        """Number of live edges (O(1), counter-maintained)."""
        return self._live_deg_sum // 2

    # ------------------------------------------------------------------
    # Worklist pops
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None``."""
        while self.v1:
            v = self.v1.pop()
            if self.alive[v] and self.deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None``."""
        while self.v2:
            v = self.v2.pop()
            if self.alive[v] and self.deg[v] == 2:
                return v
        return None

    def pop_dominated(self) -> Optional[int]:
        """Pop a *verified* dominated vertex (Algorithm 5 Line 8)."""
        while self.dominated:
            u = self.dominated.pop()
            if self.alive[u] and self.is_dominated(u):
                return u
        return None

    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def include(self, v: int) -> None:
        """Commit degree-zero ``v`` to the solution."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]
        self.log.include(v)

    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    def delete_vertex(self, u: int, reason: str = "exclude") -> None:
        """Delete ``u`` with full triangle/dominance maintenance.

        After removing ``u``: every edge inside N(u) loses one triangle,
        and every neighbour ``v`` has d(v) reduced — so any edge at ``v``
        may newly satisfy δ(v, x) = d(v) − 1, putting the two-hop
        neighbour ``x`` on the dominance worklist (Section 5's update
        rule).
        """
        tri = self.tri
        deg = self.deg
        self.alive[u] = 0
        self._nlive -= 1
        self._live_deg_sum -= 2 * deg[u]
        if reason == "peel":
            self.log.peel(u)
        else:
            self.log.exclude(u)
        neighbours = list(tri[u])
        neighbour_set = tri[u]
        # Drop the star at u and decrement triangle counts inside N(u).
        for v in neighbours:
            row = tri[v]
            del row[u]
            deg[v] -= 1
            for w in row:
                if w in neighbour_set:
                    row[w] -= 1
        tri[u] = {}
        deg[u] = 0
        # Re-file degrees and surface new dominance candidates.
        for v in neighbours:
            if not self.alive[v]:
                continue
            self._refile(v)
        dominated = self.dominated
        for v in neighbours:
            if not self.alive[v]:
                continue
            target = deg[v] - 1
            for x, count in tri[v].items():
                if count == target:
                    dominated.append(x)

    # ------------------------------------------------------------------
    # Path-reduction support (used by the shared Lemma 4.1 driver)
    # ------------------------------------------------------------------
    def remove_silently(self, v: int) -> None:
        """Mark a path-interior vertex dead; caller fixes endpoints.

        Interior vertices of a maximal degree-two path belong to no
        triangle (their neighbours lie on the path), so no triangle
        maintenance is needed — the invariant the paper exploits for the
        Figure 4(c)–(e) updates.
        """
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]
        for x in self.tri[v]:
            self.tri[x].pop(v, None)
        self.tri[v] = {}
        self.deg[v] = 0
        self.alive[v] = 0

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace edge ``(v, old)`` with ``(v, new)``; δ of the new edge
        is settled by :meth:`settle_new_edge` once both endpoints are
        rewired.

        The replacement happens *in place*: ``new`` takes ``old``'s
        position in the row's iteration order rather than moving to the
        end.  This keeps dict order aligned with the flat backend's
        adjacency-slot order (which overwrites the retired slot), the
        contract that makes the two backends' decision logs
        byte-identical.
        """
        row = self.tri[v]
        if old in row:
            self.tri[v] = {
                (new if key == old else key): (0 if key == old else count)
                for key, count in row.items()
            }
        else:
            row[new] = 0

    def settle_new_edge(self, a: int, b: int) -> None:
        """Compute δ(a, b) for a just-created edge and propagate dominance.

        For every common neighbour ``x``, δ(x, a) and δ(x, b) grow by one
        (Figure 4(e) update), which can create new dominance pairs in
        either direction.
        """
        tri = self.tri
        deg = self.deg
        row_a, row_b = tri[a], tri[b]
        if len(row_a) > len(row_b):
            a, b = b, a
            row_a, row_b = row_b, row_a
        common = [x for x in row_a if x != b and x in row_b]
        delta = len(common)
        row_a[b] = delta
        row_b[a] = delta
        dominated = self.dominated
        for x in common:
            tri[x][a] += 1
            row_a[x] += 1
            tri[x][b] += 1
            row_b[x] += 1
            row_x = tri[x]
            target = deg[x] - 1
            if row_x[a] == target:
                dominated.append(a)
            if row_x[b] == target:
                dominated.append(b)
            if row_a[x] == deg[a] - 1:
                dominated.append(x)
            if row_b[x] == deg[b] - 1:
                dominated.append(x)
        if delta == deg[a] - 1:
            dominated.append(b)
        if delta == deg[b] - 1:
            dominated.append(a)

    def decrement_degree(self, v: int) -> None:
        """Degree bookkeeping for an even-path anchor (Figure 4(d)).

        d(v) drops while the triangle counts of v's edges stay put, so v
        may newly dominate a neighbour.
        """
        # The path endpoint was already detached by remove_silently.
        new_degree = len(self.tri[v])
        self._live_deg_sum -= self.deg[v] - new_degree
        self.deg[v] = new_degree
        self._refile(v)
        if not self.alive[v]:
            return
        target = self.deg[v] - 1
        dominated = self.dominated
        for x, count in self.tri[v].items():
            if count == target:
                dominated.append(x)

    def refile(self, v: int) -> None:
        """Public re-file hook after a degree-preserving rewiring."""
        new_degree = len(self.tri[v])
        self._live_deg_sum -= self.deg[v] - new_degree
        self.deg[v] = new_degree
        self._refile(v)

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """Compacted live residual graph plus the id mapping."""
        remap, old_ids = compact_remap(self.alive, self.n)
        offsets = [0]
        targets: List[int] = []
        for old in old_ids:
            row = sorted(remap[w] for w in self.tri[old])
            targets.extend(row)
            offsets.append(len(targets))
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        return Graph(offsets, targets, name=name), old_ids
