"""NearLinear — the near-linear-time algorithm (paper Algorithm 5).

Three phases, matching the paper's implementation notes in Section 5:

1. **one-pass dominance** in degree-decreasing order — shrinks Δ cheaply
   because high-degree vertices tend to be dominated by low-degree ones;
2. **LP (Nemhauser–Trotter) reduction**, run once;
3. the **main loop**: degree-two path reductions and the incrementally
   maintained dominance reduction (via per-edge triangle counts,
   Lemma 5.2), peeling the maximum-degree vertex only when neither exact
   rule applies.

The degree-one reduction is subsumed by dominance (a degree-one vertex
dominates its neighbour); it is still drained with top priority so that
maximal degree-two paths always terminate at degree-≥3 anchors.

Worst-case time O(m·Δ); in practice near-linear because phase 1 collapses Δ.
"""

from __future__ import annotations

import time
from itertools import repeat as _repeat
from typing import Any, Callable, List, Optional, Tuple

from ..graphs.static_graph import Graph
from .degree_two_paths import RULE_IRREDUCIBLE, apply_degree_two_path_reduction

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional here
    _np = None  # type: ignore[assignment]
from .dominance import TriangleWorkspace, one_pass_dominance
from .flat_dominance import FlatTriangleWorkspace, flat_one_pass_dominance
from .hotpath import hot_loop
from .lp_reduction import LPReductionResult, lp_reduction
from .result import (
    STAT_DEGREE_ONE,
    STAT_DOMINANCE,
    STAT_LP_EXCLUDED,
    STAT_LP_INCLUDED,
    STAT_ONE_PASS_DOMINANCE,
    STAT_PEEL,
    MISResult,
)
from .trace import EXCLUDE, INCLUDE, DecisionLog
from ..obs.instrument import finish_profile, instrumented_factory, traced_replay
from ..obs.telemetry import get_telemetry, phase

__all__ = ["near_linear", "near_linear_reduce"]


@hot_loop
def _main_loop(workspace: Any, stop_before_peel: bool) -> bool:
    """Run Algorithm 5's reduction loop.

    Worklist pops, deletions and counter bumps are bound to locals at loop
    entry — the loop body runs once per reduction, so the attribute lookups
    would otherwise be paid O(n) times.

    Returns ``True`` when the graph was fully consumed, ``False`` when the
    loop stopped at the first would-be peel.
    """
    log = workspace.log
    pop_degree_one = workspace.pop_degree_one
    pop_degree_two = workspace.pop_degree_two
    pop_dominated = workspace.pop_dominated
    pop_max_degree = workspace.pop_max_degree
    delete_vertex = workspace.delete_vertex
    iter_live_neighbors = workspace.iter_live_neighbors
    bump = log.bump
    while True:
        u = pop_degree_one()
        if u is not None:
            for v in iter_live_neighbors(u):
                delete_vertex(v, "exclude")
                break
            bump(STAT_DEGREE_ONE)
            continue
        u = pop_degree_two()
        if u is not None:
            rule = apply_degree_two_path_reduction(workspace, u)
            if rule != RULE_IRREDUCIBLE:
                bump(rule)
            continue
        u = pop_dominated()
        if u is not None:
            delete_vertex(u, "exclude")
            bump(STAT_DOMINANCE)
            continue
        u = pop_max_degree()
        if u is None:
            return True
        if stop_before_peel:
            return False
        delete_vertex(u, "peel")
        bump(STAT_PEEL)


def _preprocess(
    graph: Graph,
    log: DecisionLog,
    preprocess: bool,
    flat: bool = True,
    telemetry: Any = None,
    sweep: Optional[Callable[[Graph], List[int]]] = None,
    lp: Optional[Callable[[Graph], LPReductionResult]] = None,
) -> Tuple[Graph, List[int]]:
    """Phases 1–2: one-pass dominance, then the LP reduction.

    Decisions land in ``log`` (original ids); returns the residual graph
    and its id map.  ``flat`` picks the stamp-based sweep over the
    set-based oracle — both produce the identical removed list (the
    differential suite asserts it), so this only changes the constant.
    ``sweep`` overrides the phase-1 sweep entirely (the vectorized backend
    passes :func:`~repro.core.vectorized.vectorized_one_pass_dominance`,
    which again returns the identical removed list).  ``lp`` likewise
    overrides the phase-2 LP solver (the vectorized backend passes
    :func:`~repro.core.vec_lp.vec_lp_reduction`, identical classification
    by König-cover invariance).  ``telemetry`` wraps the two phases in
    ``dominance-sweep`` / ``lp-kernel`` spans when a sink is active.
    """
    if not preprocess:
        return graph, list(range(graph.n))
    with phase(
        telemetry, "dominance-sweep", algorithm="NearLinear", graph=graph.name
    ) as span:
        if sweep is None:
            sweep = flat_one_pass_dominance if flat else one_pass_dominance
        dominated = sweep(graph)
        # Bulk-append the phase decisions (one entry per vertex; phases
        # 1–2 settle most vertices, so the tuples are built in C via the
        # zip/repeat pairing instead of an interpreted genexp).
        entries = log.entries
        entries.extend(zip(_repeat(EXCLUDE), zip(dominated)))
        log.bump(STAT_ONE_PASS_DOMINANCE, len(dominated))
        span.meta["removed"] = len(dominated)
    with phase(
        telemetry, "lp-kernel", algorithm="NearLinear", graph=graph.name
    ) as span:
        if _np is not None and graph.n >= 2048:
            mask = _np.ones(graph.n, dtype=bool)
            if dominated:
                mask[dominated] = False
            survivors = _np.flatnonzero(mask).tolist()
        else:
            keep = bytearray([1]) * graph.n if graph.n else bytearray()
            for u in dominated:
                keep[u] = 0
            survivors = [v for v in range(graph.n) if keep[v]]
        residual, ids = graph.subgraph(survivors)
        solve_lp = lp_reduction if lp is None else lp
        result = solve_lp(residual)
        entries.extend(
            zip(_repeat(INCLUDE), zip(map(ids.__getitem__, result.included)))
        )
        entries.extend(
            zip(_repeat(EXCLUDE), zip(map(ids.__getitem__, result.excluded)))
        )
        log.bump(STAT_LP_INCLUDED, len(result.included))
        log.bump(STAT_LP_EXCLUDED, len(result.excluded))
        span.meta["included"] = len(result.included)
        span.meta["excluded"] = len(result.excluded)
    half, half_ids = residual.subgraph(result.remaining)
    return half, [ids[v] for v in half_ids]


def near_linear(
    graph: Graph,
    preprocess: bool = True,
    workspace_factory: Optional[Callable[..., object]] = None,
    sweep: Optional[Callable[[Graph], List[int]]] = None,
    lp: Optional[Callable[[Graph], LPReductionResult]] = None,
) -> MISResult:
    """Compute a maximal independent set of ``graph`` with NearLinear.

    ``preprocess=False`` skips the one-pass dominance and LP phases (used
    by ablation benchmarks; the paper's algorithm runs both).
    ``workspace_factory`` overrides the main-loop workspace constructor
    (default :class:`~repro.core.flat_dominance.FlatTriangleWorkspace`;
    the replacement must implement the dominance protocol — pass
    :class:`~repro.core.dominance.TriangleWorkspace` to pin the
    list-of-dicts oracle, as the differential tests do).  Both backends
    produce byte-identical decision logs.  ``sweep`` and ``lp`` override
    the phase-1 dominance sweep and the phase-2 LP solver (see
    :func:`_preprocess`).
    """
    start = time.perf_counter()
    telemetry = get_telemetry()  # one global check per run
    log = DecisionLog()
    factory = FlatTriangleWorkspace if workspace_factory is None else workspace_factory
    residual, ids = _preprocess(
        graph, log, preprocess, flat=factory is not TriangleWorkspace,
        telemetry=telemetry, sweep=sweep, lp=lp,
    )
    if telemetry is not None:
        factory = instrumented_factory(factory, telemetry, "NearLinear", graph.name)
    with phase(telemetry, "setup", algorithm="NearLinear", graph=graph.name):
        workspace = factory(residual)
    with phase(telemetry, "reduce", algorithm="NearLinear", graph=graph.name) as span:
        _main_loop(workspace, stop_before_peel=False)
        span.meta["counters"] = dict(workspace.log.stats)
    log.extend_mapped(workspace.log, ids)
    if telemetry is not None:
        finish_profile(workspace)
        telemetry.add_counters(log.stats)
        outcome = traced_replay(log, graph, telemetry, "NearLinear")
    else:
        outcome = log.replay(graph)
    return MISResult(
        algorithm="NearLinear",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(log.stats),
        elapsed=time.perf_counter() - start,
    )


def near_linear_reduce(
    graph: Graph,
    preprocess: bool = True,
    workspace_factory: Optional[Callable[..., object]] = None,
    sweep: Optional[Callable[[Graph], List[int]]] = None,
    lp: Optional[Callable[[Graph], LPReductionResult]] = None,
) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize ``graph`` with NearLinear's exact rules only (no peeling).

    Returns ``(kernel, old_ids, log)`` exactly like
    :func:`repro.core.linear_time.linear_time_reduce`; used by ARW-NL and
    the Eval-III kernel comparison, and to report the paper's
    "kernel graph size by NearLinear" column of Table 3.  ``sweep`` and
    ``lp`` override the phase-1 sweep and phase-2 LP solver (see
    :func:`_preprocess`).
    """
    telemetry = get_telemetry()
    log = DecisionLog()
    factory = FlatTriangleWorkspace if workspace_factory is None else workspace_factory
    residual, ids = _preprocess(
        graph, log, preprocess, flat=factory is not TriangleWorkspace,
        telemetry=telemetry, sweep=sweep, lp=lp,
    )
    if telemetry is not None:
        factory = instrumented_factory(
            factory, telemetry, "NearLinear-reduce", graph.name
        )
    with phase(telemetry, "setup", algorithm="NearLinear-reduce", graph=graph.name):
        workspace = factory(residual)
    with phase(
        telemetry, "reduce", algorithm="NearLinear-reduce", graph=graph.name
    ) as span:
        _main_loop(workspace, stop_before_peel=True)
        span.meta["counters"] = dict(workspace.log.stats)
    if telemetry is not None:
        finish_profile(workspace)
    log.extend_mapped(workspace.log, ids)
    with phase(
        telemetry, "kernel-export", algorithm="NearLinear-reduce", graph=graph.name
    ):
        kernel, kernel_ids = workspace.export_kernel()
    return kernel, [ids[v] for v in kernel_ids], log
