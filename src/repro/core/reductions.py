"""Stand-alone exact reduction rules on immutable graphs.

These are reference implementations of each reduction rule as a pure
``Graph -> Graph`` transformation, used by the property-test suite to verify
— against brute force — that every rule preserves the independence number
in the exact arithmetic the paper states:

* degree-one reduction (Lemma 2.1): ``α(G) = α(G \\ {v}) `` with the
  degree-one vertex's neighbour ``v`` removed;
* degree-two isolation (Lemma 2.2(1)): ``α(G) = α(G \\ {v, w})``;
* degree-two folding (Lemma 2.2(2)): ``α(G) = α(G / {u, v, w}) + 1``;
* dominance (Lemma 5.1): ``α(G) = α(G \\ {u})`` for a dominated ``u``;
* the five degree-two path cases (Lemma 4.1) with their ``+⌊|P|/2⌋`` /
  ``+(|P|-1)/2`` offsets.

The production algorithms use the incremental in-place machinery instead;
keeping these pure versions separate gives the tests an independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import GraphError
from ..graphs.static_graph import Graph

__all__ = [
    "RuleApplication",
    "reduce_degree_one",
    "reduce_degree_two_isolation",
    "reduce_degree_two_folding",
    "reduce_dominance",
    "reduce_twin",
    "reduce_unconfined",
    "find_dominated_vertex",
    "find_twin_pair",
    "find_unconfined_vertex",
    "is_dominated_by",
    "is_unconfined",
]


@dataclass(frozen=True)
class RuleApplication:
    """The effect of one exact rule: a smaller graph plus α bookkeeping.

    ``alpha_offset`` satisfies ``α(original) = α(reduced) + alpha_offset``.
    ``removed_vertices`` are the *original* ids no longer present; the
    reduced graph is compacted and ``old_ids`` maps its ids back.
    """

    reduced: Graph
    old_ids: Tuple[int, ...]
    alpha_offset: int
    removed_vertices: FrozenSet[int]
    note: str = ""
    fold_record: Optional[Tuple[int, int, int]] = None
    extra_edges: Tuple[Tuple[int, int], ...] = field(default=())


def _delete(graph: Graph, doomed: FrozenSet[int], extra_edges: Tuple[Tuple[int, int], ...] = ()) -> Tuple[Graph, Tuple[int, ...]]:
    keep = [v for v in range(graph.n) if v not in doomed]
    new_id = {old: new for new, old in enumerate(keep)}
    edges = [
        (new_id[u], new_id[v])
        for u, v in graph.edges()
        if u not in doomed and v not in doomed
    ]
    edges.extend((new_id[u], new_id[v]) for u, v in extra_edges)
    return Graph.from_edges(len(keep), edges, name=graph.name), tuple(keep)


def reduce_degree_one(graph: Graph, u: int) -> RuleApplication:
    """Apply the degree-one reduction at vertex ``u`` (Lemma 2.1).

    Removes ``u``'s unique neighbour ``v`` and ``u`` itself (``u`` joins
    the solution), so ``α(G) = α(G') + 1``.
    """
    if graph.degree(u) != 1:
        raise GraphError(f"vertex {u} has degree {graph.degree(u)}, expected 1")
    v = graph.neighbors(u)[0]
    reduced, old_ids = _delete(graph, frozenset({u, v}))
    return RuleApplication(
        reduced, old_ids, 1, frozenset({u, v}), note=f"degree-one at {u}, removed {v}"
    )


def reduce_degree_two_isolation(graph: Graph, u: int) -> RuleApplication:
    """Apply degree-two isolation at ``u`` (Lemma 2.2(1)).

    ``u``'s neighbours ``v, w`` are adjacent; remove all three (``u``
    joins the solution), so ``α(G) = α(G') + 1``.
    """
    if graph.degree(u) != 2:
        raise GraphError(f"vertex {u} has degree {graph.degree(u)}, expected 2")
    v, w = graph.neighbors(u)
    if not graph.has_edge(v, w):
        raise GraphError(f"neighbours of {u} are not adjacent; use folding")
    reduced, old_ids = _delete(graph, frozenset({u, v, w}))
    return RuleApplication(
        reduced, old_ids, 1, frozenset({u, v, w}), note=f"isolation at {u}"
    )


def reduce_degree_two_folding(graph: Graph, u: int) -> RuleApplication:
    """Apply degree-two folding at ``u`` (Lemma 2.2(2)).

    ``u``'s neighbours ``v, w`` are non-adjacent; ``{u, v, w}`` contracts
    to one supervertex and ``α(G) = α(G/{u,v,w}) + 1``.  The supervertex
    takes ``w``'s id (recorded in ``fold_record = (u, v, w)``).
    """
    if graph.degree(u) != 2:
        raise GraphError(f"vertex {u} has degree {graph.degree(u)}, expected 2")
    v, w = graph.neighbors(u)
    if graph.has_edge(v, w):
        raise GraphError(f"neighbours of {u} are adjacent; use isolation")
    merged_neighbourhood = (set(graph.neighbors(v)) | set(graph.neighbors(w))) - {u, v, w}
    extra = tuple((w, x) for x in sorted(merged_neighbourhood) if not graph.has_edge(w, x))
    reduced, old_ids = _delete(graph, frozenset({u, v}), extra_edges=extra)
    return RuleApplication(
        reduced,
        old_ids,
        1,
        frozenset({u, v}),
        note=f"folding at {u} into supervertex {w}",
        fold_record=(u, v, w),
        extra_edges=extra,
    )


def is_dominated_by(graph: Graph, u: int, v: int) -> bool:
    """Whether ``v`` dominates ``u``: ``(v,u) ∈ E`` and N(v)\\{u} ⊆ N(u)."""
    if not graph.has_edge(u, v):
        return False
    u_neighbourhood = set(graph.neighbors(u))
    return all(x == u or x in u_neighbourhood for x in graph.neighbors(v))


def find_dominated_vertex(graph: Graph) -> Optional[Tuple[int, int]]:
    """Find some pair ``(u, v)`` with ``v`` dominating ``u``, or ``None``."""
    for u in range(graph.n):
        for v in graph.neighbors(u):
            if graph.degree(v) <= graph.degree(u) and is_dominated_by(graph, u, v):
                return u, v
    return None


def find_twin_pair(graph: Graph) -> Optional[Tuple[int, int]]:
    """Find reducible degree-3 twins: non-adjacent ``u, v`` with
    ``N(u) = N(v)`` and at least one edge inside the shared neighbourhood.

    This is the non-folding half of the twin reduction of [1]; the
    independent-neighbourhood half needs a 5-to-1 contraction and is left
    to the branching solver.
    """
    buckets: Dict[Tuple[int, ...], int] = {}
    for u in range(graph.n):
        if graph.degree(u) != 3:
            continue
        key = graph.neighbors(u)
        if key in buckets:
            v = buckets[key]
            a, b, c = key
            if graph.has_edge(a, b) or graph.has_edge(a, c) or graph.has_edge(b, c):
                return v, u
        else:
            buckets[key] = u
    return None


def reduce_twin(graph: Graph, u: int, v: int) -> RuleApplication:
    """Apply the (non-folding) twin reduction to twins ``u`` and ``v``.

    Preconditions: ``u ≠ v`` non-adjacent, ``N(u) = N(v)`` with
    ``|N(u)| = 3`` and an edge inside ``N(u)``.  Then some maximum
    independent set contains both twins, so ``{u, v}`` joins the solution
    and ``N(u)`` is removed: ``α(G) = α(G') + 2``.
    """
    if graph.has_edge(u, v):
        raise GraphError(f"twins {u}, {v} must be non-adjacent")
    neighbourhood = graph.neighbors(u)
    if neighbourhood != graph.neighbors(v):
        raise GraphError(f"vertices {u} and {v} are not twins")
    if len(neighbourhood) != 3:
        raise GraphError("twin reduction implemented for degree-3 twins")
    a, b, c = neighbourhood
    if not (graph.has_edge(a, b) or graph.has_edge(a, c) or graph.has_edge(b, c)):
        raise GraphError("twin neighbourhood is independent; folding case unsupported")
    doomed = frozenset({u, v, a, b, c})
    reduced, old_ids = _delete(graph, doomed)
    return RuleApplication(
        reduced, old_ids, 2, doomed, note=f"twins {u}, {v} with clique edge in N"
    )


def reduce_dominance(graph: Graph, u: int, v: int) -> RuleApplication:
    """Apply the dominance reduction: ``v`` dominates ``u``, remove ``u``.

    ``α(G) = α(G \\ {u})`` (Lemma 5.1).
    """
    if not is_dominated_by(graph, u, v):
        raise GraphError(f"vertex {v} does not dominate {u}")
    reduced, old_ids = _delete(graph, frozenset({u}))
    return RuleApplication(
        reduced, old_ids, 0, frozenset({u}), note=f"{v} dominates {u}"
    )


def is_unconfined(graph: Graph, v: int) -> bool:
    """Whether ``v`` is *unconfined* (Xiao–Nagamochi / Akiba–Iwata).

    The contradiction-growing procedure: assume every maximum independent
    set contains ``v`` and grow a witness set ``S`` (initially ``{v}``)
    that such a set must avoid the neighbourhood of.  Pick any ``u ∈ N(S)``
    with exactly one neighbour in ``S``; let ``W = N(u) \\ N[S]``:

    * ``W = ∅``  — contradiction: some MIS excludes ``v`` (unconfined);
    * ``|W| = 1`` — the single vertex must also be in the assumed MIS:
      add it to ``S`` and repeat;
    * otherwise try another ``u``; if none works, ``v`` is confined.

    Removing an unconfined vertex preserves α.  This is one of the
    expensive rules the paper cites when explaining why applying the full
    rule set of [1] is slow (Section 3.1) — and it is used here only by
    the exact solver's kernelizer.
    """
    in_s = {v}
    closed = set(graph.neighbors(v))
    closed.add(v)
    while True:
        best_w: Optional[FrozenSet[int]] = None
        frontier = set()
        for s in sorted(in_s):
            frontier.update(graph.neighbors(s))
        frontier -= in_s
        # Sorted scan: ties between candidate extenders are broken by
        # vertex id, not set hash order, so the S grown here (and any
        # decision downstream of the confined/unconfined verdict) is
        # identical across processes.
        for u in sorted(frontier):
            s_neighbours = sum(1 for x in graph.neighbors(u) if x in in_s)
            if s_neighbours != 1:
                continue
            outside = frozenset(x for x in graph.neighbors(u) if x not in closed)
            if not outside:
                return True
            if len(outside) == 1 and (best_w is None or len(outside) < len(best_w)):
                best_w = outside
        if best_w is None:
            return False
        (w,) = best_w
        in_s.add(w)
        closed.update(graph.neighbors(w))
        closed.add(w)


def find_unconfined_vertex(graph: Graph) -> Optional[int]:
    """Some unconfined vertex of ``graph``, or ``None``."""
    for v in range(graph.n):
        if graph.degree(v) and is_unconfined(graph, v):
            return v
    return None


def reduce_unconfined(graph: Graph, v: int) -> RuleApplication:
    """Remove the unconfined vertex ``v``; ``α(G) = α(G \\ {v})``."""
    if not is_unconfined(graph, v):
        raise GraphError(f"vertex {v} is not unconfined")
    reduced, old_ids = _delete(graph, frozenset({v}))
    return RuleApplication(
        reduced, old_ids, 0, frozenset({v}), note=f"unconfined vertex {v}"
    )
