"""Minimum vertex cover via the independent-set complement (paper §2).

``C ⊆ V`` is a (minimum) vertex cover iff ``V \\ C`` is a (maximum)
independent set, so every reducing-peeling algorithm doubles as a vertex
cover heuristic — the paper states its techniques "can be directly applied
to compute a high-quality vertex cover".  This module packages that:
:func:`minimum_vertex_cover` runs any registered algorithm and returns the
complement, carrying over the Theorem-6.1 certificate as a *lower* bound
(``|C| ≥ n − (|I| + |R|)``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from ..graphs.static_graph import Graph
from .framework import compute_independent_set

__all__ = ["VCResult", "minimum_vertex_cover"]


@dataclass(frozen=True)
class VCResult:
    """The outcome of a vertex-cover computation.

    ``lower_bound ≤ τ(G) ≤ size``; ``is_exact`` certifies ``size = τ(G)``
    (the complement independent set was certified maximum).
    """

    algorithm: str
    graph_name: str
    vertex_cover: FrozenSet[int]
    lower_bound: int
    is_exact: bool = False
    stats: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def size(self) -> int:
        """Number of vertices in the cover."""
        return len(self.vertex_cover)


def minimum_vertex_cover(graph: Graph, algorithm: str = "NearLinear") -> VCResult:
    """Compute a small vertex cover with a reducing-peeling algorithm.

    Runs ``algorithm`` (any name accepted by
    :func:`repro.core.framework.compute_independent_set`), complements the
    independent set, and converts the α upper bound into a τ lower bound.
    """
    start = time.perf_counter()
    result = compute_independent_set(graph, algorithm)
    cover = frozenset(v for v in range(graph.n) if v not in result.independent_set)
    return VCResult(
        algorithm=result.algorithm,
        graph_name=graph.name,
        vertex_cover=cover,
        lower_bound=graph.n - result.upper_bound,
        is_exact=result.is_exact,
        stats=dict(result.stats),
        elapsed=time.perf_counter() - start,
    )
