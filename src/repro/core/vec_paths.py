"""Vectorized degree-two path rounds and batched peeling (ISSUE 7).

PR6's :mod:`repro.core.vectorized` batched the degree-one cascade but left
the Lemma 4.1 path driver and the peeling loop on the scalar protocol,
where every step pays numpy-scalar indexing costs (one ``adj`` slice, one
liveness mask and one ``tolist()`` per chain hop; one boxed compare per
neighbour per deletion).  This module removes those costs while keeping
the *decision sequence byte-identical* to the scalar driver:

* **whole-round path discovery** — the live neighbour *pairs* of every
  degree-two vertex in the current worklist are gathered with one ragged
  CSR segment gather (:func:`_gather_from`) and cached; chain walks then
  run on plain Python ints (:func:`_walk_cached`) instead of per-hop numpy
  slices.  New degree-two vertices produced by later sweeps are fed to the
  cache by :func:`~repro.core.vectorized._degree_one_rounds` (each vertex
  is gathered at most once — degrees only fall, so a cached pair stays
  valid until a rewire retires it, and rewires invalidate explicitly);
* **batch-wise path application** (:func:`_reduce_one`) — the Lemma 4.1
  cases replicate :func:`~repro.core.degree_two_paths.apply_degree_two_path_reduction`
  mutation-for-mutation, but the interior removals run as one bulk
  liveness store plus O(1) counter updates instead of one
  ``remove_silently`` per vertex.  The :class:`~repro.core.trace.DecisionLog`
  entries (and their order) are **identical** — the differential tests
  assert entry-for-entry equality against the scalar driver;
* **batched peeling** (:func:`vec_delete_vertex`) — a peel (or an anchor
  deletion) resolves the whole neighbour row with masked gathers: one
  fancy-index degree decrement, row-order-preserving crossing
  classification, and bulk worklist extends.  Entry order matches the
  scalar ``delete_vertex`` exactly (crossings are logged in adjacency-row
  order on both paths).

Why cached pairs stay coherent: degrees only decrease, so a vertex whose
pair was captured at degree two either still has the same two live
neighbours, or its degree dropped (the walk re-checks ``deg == 2`` before
every lookup), or it was rewired — and the only rewires in the whole
protocol happen inside the path reductions below, which drop the cache
entry on the spot.  Sweeps and peels never rewire.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .degree_two_paths import (
    RULE_ANCHOR_SHARED,
    RULE_CYCLE,
    RULE_EVEN_EDGE,
    RULE_EVEN_NO_EDGE,
    RULE_IRREDUCIBLE,
    RULE_ODD_EDGE,
    RULE_ODD_NO_EDGE,
)
from .hotpath import hot_loop
from .trace import EXCLUDE, INCLUDE, PATH, PEEL

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

__all__ = ["PathPairCache", "run_path_rounds", "vec_delete_vertex"]

#: Below this many candidates a ragged gather costs more than lazy
#: per-vertex fills; the drain falls back to exact scalar lookups.
_GATHER_MIN = 48

#: Rows at or below this degree are deleted through the scalar protocol —
#: the numpy row machinery only wins once the row amortizes its setup.
_SCALAR_DELETE_MAX_DEGREE = 8


class PathPairCache:
    """Cached live-neighbour pairs for degree-two vertices.

    ``first``/``second`` hold each cached vertex's two live neighbours in
    adjacency-row order (the order :meth:`iter_live_neighbors` yields, so
    walks take the same branch the scalar driver takes); ``have`` flags
    validity.  ``pending`` collects the degree-two arrivals announced by
    the vectorized sweep between drains (see
    ``VecWorkspace._pair_pending``), and ``primed`` marks the initial bulk
    gather as done.
    """

    __slots__ = ("first", "second", "have", "pending", "primed")

    def __init__(self, n: int) -> None:
        np = _np
        self.first = np.zeros(n, dtype=np.int32)
        self.second = np.zeros(n, dtype=np.int32)
        self.have = np.zeros(n, dtype=np.uint8)
        self.pending: List[Any] = []
        self.primed = False


@hot_loop
def _gather_from(workspace: Any, cache: PathPairCache, cand: Any) -> None:
    """Fill the pair cache for every valid candidate in one ragged gather.

    ``cand`` is a sorted-unique int32 index array; entries that are dead,
    not degree-two, or already cached are dropped.  Every surviving
    candidate has exactly two live adjacency slots (the workspace
    invariant), so the filtered gather yields its pair in row order at
    even/odd positions.  If the 2-per-segment invariant ever failed the
    gather is abandoned — lazy per-vertex fills keep the drain exact.
    """
    alive = workspace.alive
    deg = workspace.deg
    have = cache.have
    cand = cand[(alive[cand] != 0) & (deg[cand] == 2) & (have[cand] == 0)]
    if cand.size == 0:
        return
    np = _np
    xadj = workspace.xadj
    starts = xadj[cand]
    lens = xadj[cand + 1] - starts
    total = int(lens.sum())
    seg_ends = np.cumsum(lens)
    pos = np.arange(total, dtype=np.int64) - np.repeat(seg_ends - lens, lens)
    pos += np.repeat(starts, lens)
    nbrs = workspace.adj[pos]
    live = nbrs[alive[nbrs] != 0]
    if int(live.size) != 2 * int(cand.size):  # pragma: no cover - invariant
        return
    cache.first[cand] = live[0::2]
    cache.second[cand] = live[1::2]
    have[cand] = 1


@hot_loop
def _pair_of(workspace: Any, v: int, cache: PathPairCache) -> Tuple[int, int]:
    """``v``'s two live neighbours (row order), from the cache or a row scan."""
    if cache.have[v]:
        return int(cache.first[v]), int(cache.second[v])
    nbrs = workspace.iter_live_neighbors(v)
    a = nbrs[0]
    b = nbrs[1]
    cache.first[v] = a
    cache.second[v] = b
    cache.have[v] = 1
    return a, b


@hot_loop
def _walk_cached(
    workspace: Any, start: int, first: int, cache: PathPairCache
) -> Tuple[List[int], Optional[int]]:
    """Cached twin of :func:`repro.core.degree_two_paths._walk`.

    Walks from ``start`` through ``first`` along degree-two vertices using
    cached neighbour pairs; returns ``(interior, anchor)`` with ``None``
    anchor for a cycle, exactly like the scalar walk (same branch on the
    pendant-cycle end: both neighbours equal to ``prev``).
    """
    deg = workspace.deg
    interior: List[int] = []
    append = interior.append
    pair_of = _pair_of
    prev, cur = start, first
    while deg[cur] == 2:
        if cur == start:
            return interior, None
        append(cur)
        a, b = pair_of(workspace, cur, cache)
        nxt = a if a != prev else b
        if nxt == prev:  # pendant cycle end (C2 impossible)
            return interior, prev
        prev, cur = cur, nxt
    return interior, cur


@hot_loop
def vec_delete_vertex(workspace: Any, v: int, reason: str) -> None:
    """Row-batched twin of :meth:`VecWorkspace.delete_vertex`.

    Resolves the whole adjacency row with masked gathers: one liveness
    mask (row order preserved), one fancy-index degree decrement, bulk
    worklist extends and row-order include records — entry-for-entry
    identical to the scalar deletion.  Small rows take the scalar path
    outright (the numpy setup would dominate).
    """
    deg = workspace.deg
    if deg[v] <= _SCALAR_DELETE_MAX_DEGREE or _np is None:
        workspace.delete_vertex(v, reason)
        return
    alive = workspace.alive
    xadj = workspace.xadj
    row = workspace.adj[xadj[v] : xadj[v + 1]]
    dv = int(deg[v])
    alive[v] = 0
    entries = workspace.log.entries
    if reason == "peel":
        entries.append((PEEL, (int(v),)))
    else:
        entries.append((EXCLUDE, (int(v),)))
    live = row[alive[row] != 0]
    k = int(live.size)
    if k == 0:
        workspace._nlive -= 1
        workspace._live_deg_sum -= dv
        return
    deg[live] -= 1
    new_deg = deg[live]
    to_zero = live[new_deg == 0]
    alive[to_zero] = 0
    workspace.v1.extend(live[new_deg == 1].tolist())
    workspace.v2.extend(live[new_deg == 2].tolist())
    for x in to_zero.tolist():
        entries.append((INCLUDE, (x,)))
    workspace._nlive -= 1 + int(to_zero.size)
    workspace._live_deg_sum -= dv + k


@hot_loop
def _remove_path_batch(workspace: Any, seg: List[int]) -> None:
    """Silently retire a run of degree-two path vertices in bulk.

    Equivalent to ``remove_silently`` per vertex (every member has degree
    exactly two, so the counter algebra collapses to O(1)); produces no
    log entries, exactly like the scalar calls it replaces.
    """
    k = len(seg)
    alive = workspace.alive
    if k >= 12 and _np is not None:
        alive[_np.asarray(seg, dtype=_np.int32)] = 0
    else:
        for x in seg:
            alive[x] = 0
    workspace._nlive -= k
    workspace._live_deg_sum -= 2 * k


@hot_loop
def _reduce_one(workspace: Any, u: int, cache: PathPairCache) -> str:
    """Apply Lemma 4.1 to the maximal path/cycle through ``u`` (batched).

    Mutation-for-mutation equivalent to
    :func:`~repro.core.degree_two_paths.apply_degree_two_path_reduction`:
    the same rewire-first ordering, the same ``PATH`` push order
    (``v_l … v₁`` so pops run away from the first-decided anchor), the
    same refile/decrement calls — only the interior removals and anchor
    deletions run batched.  Returns the ``RULE_*`` name applied.
    """
    first, second = _pair_of(workspace, u, cache)
    left, left_anchor = _walk_cached(workspace, u, first, cache)
    if left_anchor is None:
        vec_delete_vertex(workspace, u, "exclude")
        return RULE_CYCLE
    right, right_anchor = _walk_cached(workspace, u, second, cache)
    left.reverse()
    path = left + [u] + right
    v, w = left_anchor, right_anchor
    if v == w:
        vec_delete_vertex(workspace, v, "exclude")
        return RULE_ANCHOR_SHARED
    length = len(path)
    head = path[0]
    tail = path[-1]
    entries = workspace.log.entries
    have = cache.have
    if length % 2 == 1:
        if workspace.has_live_edge(v, w):
            vec_delete_vertex(workspace, v, "exclude")
            vec_delete_vertex(workspace, w, "exclude")
            return RULE_ODD_EDGE
        if length == 1:
            # Non-adjacent degree-≥3 anchors around a single vertex: the
            # one irreducible configuration (paper Appendix A.2).
            return RULE_IRREDUCIBLE
        # Case 3: keep v₁, drop v₂ … v_l, rewire (v₁, w) into existence.
        workspace.rewire(head, path[1], w)
        workspace.rewire(w, tail, head)
        have[head] = 0  # row contents changed at unchanged degree
        have[w] = 0
        _remove_path_batch(workspace, path[1:])
        chain = [v] + path + [w]
        for i in range(length - 1, 0, -1):  # path[length-1] … path[1]
            entries.append((PATH, (path[i], chain[i], chain[i + 2])))
        workspace.refile(head)
        return RULE_ODD_NO_EDGE
    chain = [v] + path + [w]
    if workspace.has_live_edge(v, w):
        # Case 4: remove the whole path; anchors each lose one edge.
        _remove_path_batch(workspace, path)
        for i in range(length - 1, -1, -1):
            entries.append((PATH, (path[i], chain[i], chain[i + 2])))
        workspace.decrement_degree(v)
        workspace.decrement_degree(w)
        return RULE_EVEN_EDGE
    # Case 5: remove the whole path and rewire (v, w) into existence.
    workspace.rewire(v, head, w)
    workspace.rewire(w, tail, v)
    have[v] = 0
    have[w] = 0
    _remove_path_batch(workspace, path)
    for i in range(length - 1, -1, -1):
        entries.append((PATH, (path[i], chain[i], chain[i + 2])))
    workspace.settle_new_edge(v, w)
    return RULE_EVEN_NO_EDGE


@hot_loop
def run_path_rounds(workspace: Any, cache: PathPairCache) -> int:
    """Drain the degree-two worklist in LIFO order until V₌₁ interrupts.

    Pops follow :meth:`pop_degree_two`'s exact validation, so the
    reduction *sequence* matches the scalar driver (which re-sweeps after
    any reduction that refiles a vertex into V₌₁ — a sweep over an empty
    worklist is a no-op, so pausing only when ``v1`` is non-empty is the
    identical schedule).  On entry the pair cache is primed: the first
    drain bulk-gathers the whole current worklist, later drains gather
    only the arrivals the sweep announced since (each vertex at most
    once).  Returns the number of reductions applied (excluding
    irreducible skips).
    """
    np = _np
    v2 = workspace.v2
    if np is not None:
        if not cache.primed:
            cache.primed = True
            workspace._pair_pending = cache.pending
            if len(v2) >= _GATHER_MIN:
                _gather_from(
                    workspace, cache, np.unique(np.asarray(v2, dtype=np.int32))
                )
        else:
            pend = cache.pending
            if pend:
                cand = pend[0] if len(pend) == 1 else np.concatenate(pend)
                del pend[:]
                if cand.size >= _GATHER_MIN:
                    _gather_from(workspace, cache, np.unique(cand))
    applied = 0
    irreducible = RULE_IRREDUCIBLE
    reduce_one = _reduce_one
    pop_degree_two = workspace.pop_degree_two
    bump = workspace.log.bump
    v1 = workspace.v1
    while not v1:
        u = pop_degree_two()
        if u is None:
            break
        rule = reduce_one(workspace, u, cache)
        if rule != irreducible:
            bump(rule)
            applied += 1
    return applied
