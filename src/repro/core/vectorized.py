"""Vectorized frontier-sweep backend — batch reducing-peeling in numpy.

The flat CSR drivers (:mod:`repro.core.workspace`,
:mod:`repro.core.bdone`, :mod:`repro.core.linear_time`) removed the
per-reduction attribute lookups and method calls, but every degree-one
reduction still costs a handful of interpreter bytecodes.  This module
removes the interpreter from the inner loop entirely: reductions run in
**rounds**.  Each round collects the whole currently-eligible degree-one
frontier as one numpy index array, resolves every reduction in the batch
with vectorized CSR operations (batched neighbour gathers, hybrid
``np.bincount`` / ``np.subtract.at`` degree updates, boolean liveness
masks), and appends
the equivalent per-vertex records to the :class:`~repro.core.trace.DecisionLog`
— so :meth:`DecisionLog.resolve` and replay consume vectorized logs exactly
like flat or legacy ones.

The round algebra (one :func:`_degree_one_rounds` sweep):

1. merge the scalar ``v1`` worklist into the pending frontier, validate
   (`alive` and ``deg == 1``) and de-duplicate;
2. gather each frontier vertex's sole live neighbour with one ragged
   segment gather (every validated degree-one vertex has exactly one);
3. split off mutual K₂ pairs (``deg[target] == 1``): the larger id is
   included, the smaller excluded — the same decision the flat LIFO pop
   makes; all remaining targets are excluded;
4. mark everything dying *before* gathering the dying rows, so the
   liveness mask drops intra-batch edges automatically, then decrement
   the surviving neighbours — a dense ``np.bincount`` pass when the
   round touches a large fraction of the graph, ``np.subtract.at`` for
   small rounds (keeps long-chain graphs O(m) total);
5. classify the survivors by new degree: 0 → include now, 1 → next
   round's frontier, 2 → the degree-two worklist.

Degree-two path reductions and peels run batched as well (PR7): the
drivers delegate to :mod:`repro.core.vec_paths`, which walks chains over
a gathered neighbour-pair cache and resolves deletions row-at-a-time
while producing the *same decision log* as the scalar protocol (the
drivers accept ``batch_rounds=False`` to run the scalar path driver
unchanged — the differential tests assert entry-for-entry log equality
between the two modes).  :class:`VecWorkspace` still implements the
complete mutation protocol of :class:`~repro.core.workspace.FlatWorkspace`
over its numpy buffers, which lets it share the Lemma 4.1 path driver, the
lazy max-degree selector and every generic consumer (instrumentation,
kernel export, the serve layer) unchanged.

The decision *sequence* may differ from the flat backend inside a round
(batch order instead of LIFO order), so the differential contract is the
canonicalized one: a valid independent set of identical size, with the
log replaying cleanly.  :func:`vectorized_one_pass_dominance` is stronger:
it returns the byte-identical removed list of
:func:`~repro.core.flat_dominance.flat_one_pass_dominance` (the numpy wave
only pre-certifies vertices that are provably removed at their sweep turn).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import replace
from itertools import repeat as _repeat
from typing import Any, List, Optional, Tuple

from ..graphs.static_graph import Graph
from ..obs.telemetry import get_telemetry, phase
from .bucket_queue import MaxDegreeSelector
from .degree_two_paths import RULE_IRREDUCIBLE, apply_degree_two_path_reduction
from .hotpath import hot_loop
from .result import STAT_DEGREE_ONE, STAT_PEEL, MISResult
from .trace import EXCLUDE, INCLUDE, DecisionLog
from .vec_paths import PathPairCache, run_path_rounds, vec_delete_vertex

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

__all__ = [
    "VecWorkspace",
    "bdone_vec",
    "linear_time_vec",
    "linear_time_vec_reduce",
    "near_linear_vec",
    "near_linear_vec_reduce",
    "vectorized_one_pass_dominance",
]


def _require_numpy() -> Any:
    if _np is None:
        raise RuntimeError(
            "the vectorized backend requires numpy; "
            "use the flat backend (FlatWorkspace) instead"
        )
    return _np


@hot_loop
def _push_entries(
    entries: List[Tuple[int, Tuple[int, ...]]], kind: int, batch: Any
) -> None:
    """Append one ``(kind, (v,))`` record per batch member.

    ``batch`` is a numpy index array; ``tolist()`` converts once at C speed
    so the log holds pure Python ints (the JSON snapshot path and the
    differential tests both require that).  The ``zip``/``repeat`` pairing
    builds every ``(kind, (v,))`` tuple in C — at tens of thousands of
    entries per sweep the interpreted genexp equivalent is a measurable
    slice of the whole sweep.  Kept outside the hot loop so the sweep
    kernel stays comprehension-free (RL001).
    """
    entries.extend(zip(_repeat(kind), zip(batch.tolist())))


class VecWorkspace:
    """Numpy-buffer workspace driving the batch frontier sweeps.

    State mirrors :class:`~repro.core.workspace.FlatWorkspace` — CSR
    offsets/targets, flat degree and liveness buffers, scalar ``v1``/``v2``
    worklists, incrementally maintained live counters — but the buffers are
    numpy arrays (``int64`` offsets, ``int32`` targets/degrees, ``uint8``
    liveness) so whole frontiers can be indexed at once.  The scalar
    mutation protocol is implemented in full: the shared degree-two path
    driver, the peeling selector, instrumented subclasses and kernel export
    all work unchanged; only the degree-one cascade runs vectorized.
    """

    __slots__ = (
        "graph",
        "n",
        "adj",
        "xadj",
        "deg",
        "alive",
        "log",
        "v1",
        "v2",
        "_selector",
        "_track2",
        "_nlive",
        "_live_deg_sum",
        "_rounds",
        "_pair_pending",
        "_v2_filter_at",
    )

    def __init__(self, graph: Graph, track_degree_two: bool = False) -> None:
        np = _require_numpy()
        self.graph = graph
        n = self.n = graph.n
        offsets, targets = graph.flat_csr()
        if n:
            self.xadj = np.frombuffer(offsets, dtype=np.int64)
        else:
            self.xadj = np.zeros(1, dtype=np.int64)
        if len(targets):
            self.adj = np.frombuffer(targets, dtype=np.int32).copy()
        else:
            self.adj = np.zeros(0, dtype=np.int32)
        self.deg = np.diff(self.xadj).astype(np.int32)
        self.alive = np.ones(n, dtype=np.uint8)
        self.log = DecisionLog()
        self._selector: Optional[MaxDegreeSelector] = None
        self._track2 = track_degree_two
        self._nlive = n
        self._live_deg_sum = int(len(targets))
        self._rounds = 0
        # Batched path rounds install a list here; the sweep then feeds it
        # every new degree-two arrival so pair gathers stay incremental.
        self._pair_pending: Optional[List[Any]] = None
        self._v2_filter_at = 512
        zeros = np.flatnonzero(self.deg == 0)
        if zeros.size:
            self.alive[zeros] = 0
            self._nlive -= int(zeros.size)
            _push_entries(self.log.entries, INCLUDE, zeros)
        self.v1: List[int] = np.flatnonzero(self.deg == 1).tolist()
        if track_degree_two:
            self.v2: List[int] = np.flatnonzero(self.deg == 2).tolist()
        else:
            self.v2 = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """The current neighbours of ``v`` (skipping deleted vertices)."""
        row = self.adj[self.xadj[v] : self.xadj[v + 1]]
        result: List[int] = row[self.alive[row] != 0].tolist()
        return result

    def iter_live_neighbors(self, v: int) -> List[int]:
        """Current neighbours of ``v`` as Python ints (eager, like flat)."""
        row = self.adj[self.xadj[v] : self.xadj[v + 1]]
        result: List[int] = row[self.alive[row] != 0].tolist()
        return result

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` exists (scan the smaller side)."""
        deg = self.deg
        if deg[u] > deg[v]:
            u, v = v, u
        if not self.alive[v]:
            return False
        xadj = self.xadj
        row = self.adj[xadj[u] : xadj[u + 1]]
        return bool((row == v).any())

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices (O(1), counter-maintained)."""
        return self._nlive

    def live_edge_count(self) -> int:
        """Number of live edges (O(1), counter-maintained)."""
        return self._live_deg_sum // 2

    # ------------------------------------------------------------------
    # Mutations (scalar protocol, shared with the path driver)
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None`` if V₌₁ is empty."""
        alive = self.alive
        deg = self.deg
        v1 = self.v1
        while v1:
            v = v1.pop()
            if alive[v] and deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None`` if V₌₂ is empty.

        Long stale runs (vertices consumed by sweeps after being filed)
        are compacted with one vectorized mask instead of popping one
        numpy-scalar check at a time.  The filter keeps order, so the pop
        sequence over *valid* entries is unchanged; the doubling threshold
        amortizes each O(|V₌₂|) compaction against the appends since the
        previous one.
        """
        alive = self.alive
        deg = self.deg
        v2 = self.v2
        if len(v2) >= self._v2_filter_at:
            arr = _np.asarray(v2, dtype=_np.int32)
            v2 = arr[(alive[arr] != 0) & (deg[arr] == 2)].tolist()
            self.v2 = v2
            self._v2_filter_at = max(512, 2 * len(v2))
        while v2:
            v = v2.pop()
            if alive[v] and deg[v] == 2:
                return v
        return None

    def include(self, v: int) -> None:
        """Commit ``v`` (degree zero) to the independent set."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= int(self.deg[v])
        self.log.include(int(v))

    def delete_vertex(self, v: int, reason: str = "exclude") -> None:
        """Remove ``v`` and its edges (degree drop + re-file per neighbour)."""
        alive = self.alive
        deg = self.deg
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= int(deg[v])
        if reason == "peel":
            self.log.peel(int(v))
        else:
            self.log.exclude(int(v))
        v1_append = self.v1.append
        v2_append = self.v2.append
        xadj = self.xadj
        removed = 0
        for w in self.adj[xadj[v] : xadj[v + 1]].tolist():
            if alive[w]:
                removed += 1
                d = int(deg[w]) - 1
                deg[w] = d
                if d == 1:
                    v1_append(w)
                elif d == 2:
                    v2_append(w)
                elif d == 0:
                    alive[w] = 0
                    self._nlive -= 1
                    self.log.include(w)
        self._live_deg_sum -= removed

    def remove_silently(self, v: int) -> None:
        """Mark ``v`` dead without logging or touching neighbour degrees."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= int(self.deg[v])

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace the adjacency entry ``old`` with ``new`` in ``v``'s row."""
        np = _np
        lo = int(self.xadj[v])
        hi = int(self.xadj[v + 1])
        hits = np.flatnonzero(self.adj[lo:hi] == old)
        if hits.size == 0:
            raise ValueError(f"{old} is not an adjacency entry of {v}")
        self.adj[lo + int(hits[0])] = new

    def settle_new_edge(self, a: int, b: int) -> None:
        """No-op hook: the vectorized workspace keeps no per-edge metadata."""

    def decrement_degree(self, v: int) -> None:
        """Drop ``deg(v)`` by one and re-file ``v`` (endpoint bookkeeping)."""
        self.deg[v] -= 1
        self._live_deg_sum -= 1
        self._refile(v)

    def refile(self, v: int) -> None:
        """Public re-file hook (after a rewire that kept the degree)."""
        self._refile(v)

    def _refile(self, w: int) -> None:
        d = int(self.deg[w])
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    # ------------------------------------------------------------------
    # Peeling support
    # ------------------------------------------------------------------
    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue; O(m) total).

        Short-circuits when the graph is already consumed — the common case
        for LinearTime on sparse inputs, where building the selector would
        be the only O(n) Python scan left in the run.
        """
        if self._selector is None:
            if self._nlive == 0:
                return None
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """The live residual graph, compacted, plus the id mapping.

        One vectorized pass: live slots are selected with a boolean mask
        (row and target both alive), remapped through the cumulative-sum
        id map and sorted per row with a single ``lexsort`` — the same
        sorted-row kernel :meth:`FlatWorkspace.export_kernel` builds.
        """
        np = _require_numpy()
        alive_mask = self.alive != 0
        old_ids: List[int] = np.flatnonzero(alive_mask).tolist()
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        if not old_ids:
            return Graph([0], [], name=name), old_ids
        remap = np.cumsum(alive_mask.astype(np.int64)) - 1
        slot_rows = np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.xadj)
        )
        live_slots = alive_mask[self.adj] & alive_mask[slot_rows]
        rows = remap[slot_rows[live_slots]]
        tgts = remap[self.adj[live_slots]]
        order = np.lexsort((tgts, rows))
        counts = np.bincount(rows, minlength=len(old_ids))
        offsets = np.zeros(len(old_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return (
            Graph(offsets.tolist(), tgts[order].tolist(), name=name),
            old_ids,
        )


@hot_loop
def _degree_one_rounds(workspace: VecWorkspace) -> Tuple[int, int]:
    """Drain the degree-one frontier in vectorized rounds.

    Merges the scalar ``v1`` worklist into the pending frontier, then
    repeats: validate & de-duplicate the frontier, gather every member's
    sole live neighbour in one ragged segment gather, resolve the batch
    (K₂ pairs keep the larger id, every other target is excluded), mark the
    dying wave dead, decrement the surviving neighbours with one scatter,
    and classify the crossings (0 → include, 1 → next frontier, 2 → V₌₂).

    Returns ``(excluded, rounds)``: the number of degree-one applications
    (one per excluded vertex, matching the flat driver's counter) and the
    number of non-empty rounds.  Counter deltas are flushed to the
    workspace before returning, so the scalar protocol sees consistent
    state.
    """
    np = _np
    np_unique = np.unique
    np_concatenate = np.concatenate
    np_asarray = np.asarray
    np_repeat = np.repeat
    np_arange = np.arange
    np_cumsum = np.cumsum
    np_empty = np.empty
    np_bincount = np.bincount
    np_flatnonzero = np.flatnonzero
    np_subtract = np.subtract
    subtract_at = np.subtract.at
    int32 = np.int32
    int64 = np.int64
    n = workspace.n
    adj = workspace.adj
    xadj = workspace.xadj
    deg = workspace.deg
    alive = workspace.alive
    v1 = workspace.v1
    v2_extend = workspace.v2.extend
    entries = workspace.log.entries
    track2 = workspace._track2
    pair_pending = workspace._pair_pending
    pending = np_empty(0, dtype=int32)
    excluded = 0
    rounds = 0
    nlive_drop = 0
    deg_sum_drop = 0
    while True:
        if v1:
            # The scalar worklist may hold duplicates and already-settled
            # vertices; merging forces a de-dup.  Between rounds nothing
            # touches ``v1``, and the round's own product
            # (``affected[new_deg == 1]``) is sorted-unique by
            # construction, so this branch runs once per sweep in the
            # common case — ``np.unique`` stays off the per-round path.
            pending = np_unique(
                np_concatenate((pending, np_asarray(v1, dtype=int32)))
            )
            v1.clear()
        if pending.size == 0:
            break
        frontier = pending[(alive[pending] != 0) & (deg[pending] == 1)]
        pending = np_empty(0, dtype=int32)
        fsize = int(frontier.size)
        if fsize == 0:
            continue
        rounds += 1
        # -- sole live neighbour per frontier vertex (ragged gather) ----
        starts = xadj[frontier]
        lens = xadj[frontier + 1] - starts
        total = int(lens.sum())
        seg_ends = np_cumsum(lens)
        pos = np_arange(total, dtype=int64) - np_repeat(seg_ends - lens, lens)
        pos += np_repeat(starts, lens)
        nbrs = adj[pos]
        live_slots = alive[nbrs] != 0
        seg = np_repeat(np_arange(fsize, dtype=int64), lens)
        target = np_empty(fsize, dtype=int32)
        target[seg[live_slots]] = nbrs[live_slots]
        # -- split mutual K₂ pairs from ordinary targets ----------------
        pair = deg[target] == 1
        pair_u = frontier[pair]
        pair_v = target[pair]
        win = pair_u > pair_v
        included_pair = pair_u[win]
        dying = np_unique(np_concatenate((target[~pair], pair_v[win])))
        # -- mark the wave dead, then decrement the survivors -----------
        d_dying = int(deg[dying].sum()) + int(included_pair.size)
        alive[dying] = 0
        alive[included_pair] = 0
        nlive_drop += int(dying.size) + int(included_pair.size)
        starts = xadj[dying]
        lens = xadj[dying + 1] - starts
        total = int(lens.sum())
        seg_ends = np_cumsum(lens)
        pos = np_arange(total, dtype=int64) - np_repeat(seg_ends - lens, lens)
        pos += np_repeat(starts, lens)
        touched = adj[pos]
        touched = touched[alive[touched] != 0]
        tsize = int(touched.size)
        deg_sum_drop += d_dying + tsize
        # -- decrement the survivors & classify the crossings -----------
        # Two strategies with the same result: a dense bincount (O(n) per
        # round, one pass, no sort) when the round touches a sizable slice
        # of the graph, and sparse ``np.subtract.at`` + ``np.unique``
        # (O(t log t), no O(n) term) for tiny rounds — long chains produce
        # O(n) one-vertex rounds, where a dense pass per round would be
        # quadratic.
        if tsize * 8 >= n:
            delta = np_bincount(touched, minlength=n)
            np_subtract(deg, delta, out=deg, casting="unsafe")
            affected = np_flatnonzero(delta)
        else:
            subtract_at(deg, touched, 1)
            affected = np_unique(touched)
        new_deg = deg[affected]
        crossed_zero = affected[new_deg == 0]
        alive[crossed_zero] = 0
        nlive_drop += int(crossed_zero.size)
        _push_entries(entries, EXCLUDE, dying)
        _push_entries(entries, INCLUDE, included_pair)
        _push_entries(entries, INCLUDE, crossed_zero)
        excluded += int(dying.size)
        if track2:
            twos = affected[new_deg == 2]
            v2_extend(twos.tolist())
            if pair_pending is not None:
                # Announce the arrivals to the path-round pair cache: each
                # vertex is gathered at most once per time it *becomes*
                # degree-two, which (degrees only fall) is once.
                pair_pending.append(twos)
        pending = affected[new_deg == 1]
    workspace._nlive -= nlive_drop
    workspace._live_deg_sum -= deg_sum_drop
    workspace._rounds += rounds
    return excluded, rounds


def _sweep(workspace: VecWorkspace, telemetry: Any, algorithm: str) -> int:
    """One frontier sweep, under a ``vec-sweep`` span when telemetry is on.

    The span carries the round counter and the batch size, giving traces
    the per-sweep granularity that per-event instrumentation cannot see
    once reductions run in bulk.
    """
    if telemetry is None or not workspace.v1:
        excluded, _ = _degree_one_rounds(workspace)
        return excluded
    with phase(
        telemetry, "vec-sweep", algorithm=algorithm, graph=workspace.graph.name
    ) as span:
        excluded, rounds = _degree_one_rounds(workspace)
        span.meta["rounds"] = rounds
        span.meta["excluded"] = excluded
    return excluded


def drive_linear_time_vec(
    workspace: VecWorkspace, stop_before_peel: bool, batch_rounds: bool = True
) -> bool:
    """LinearTime over the vectorized workspace.

    Degree-one reductions run in batch rounds.  With ``batch_rounds``
    (the default) degree-two paths drain through
    :func:`~repro.core.vec_paths.run_path_rounds` — cached chain walks
    plus batch-wise Lemma 4.1 application — and peels resolve their whole
    neighbour row at once; the decision log is *identical* to the scalar
    protocol, which ``batch_rounds=False`` keeps available as the
    differential oracle.  Returns ``True`` when the graph was fully
    consumed, ``False`` when stopped at the first would-be peel.
    """
    log = workspace.log
    telemetry = get_telemetry()
    excluded = 0
    consumed = True
    if batch_rounds and _np is not None:
        cache = PathPairCache(workspace.n)
        while True:
            excluded += _sweep(workspace, telemetry, "LinearTime-vec")
            if workspace.v2:
                run_path_rounds(workspace, cache)
                if workspace.v1:
                    continue
            u = workspace.pop_max_degree()
            if u is None:
                break
            if stop_before_peel:
                consumed = False
                break
            vec_delete_vertex(workspace, u, "peel")
            log.bump(STAT_PEEL)
        if excluded:
            log.bump(STAT_DEGREE_ONE, excluded)
        return consumed
    while True:
        excluded += _sweep(workspace, telemetry, "LinearTime-vec")
        u = workspace.pop_degree_two()
        if u is not None:
            rule = apply_degree_two_path_reduction(workspace, u)
            if rule != RULE_IRREDUCIBLE:
                log.bump(rule)
            continue
        u = workspace.pop_max_degree()
        if u is None:
            break
        if stop_before_peel:
            consumed = False
            break
        workspace.delete_vertex(u, "peel")
        log.bump(STAT_PEEL)
    if excluded:
        log.bump(STAT_DEGREE_ONE, excluded)
    return consumed


def drive_bdone_vec(workspace: VecWorkspace, batch_rounds: bool = True) -> None:
    """BDOne over the vectorized workspace (sweeps + batched peels)."""
    log = workspace.log
    telemetry = get_telemetry()
    excluded = 0
    batched = batch_rounds and _np is not None
    while True:
        excluded += _sweep(workspace, telemetry, "BDOne-vec")
        u = workspace.pop_max_degree()
        if u is None:
            break
        if batched:
            vec_delete_vertex(workspace, u, "peel")
        else:
            workspace.delete_vertex(u, "peel")
        log.bump(STAT_PEEL)
    if excluded:
        log.bump(STAT_DEGREE_ONE, excluded)


# ----------------------------------------------------------------------
# Vectorized one-pass dominance (NearLinear phase 1)
# ----------------------------------------------------------------------
@hot_loop
def vectorized_one_pass_dominance(graph: Graph) -> List[int]:
    """The degree-decreasing dominance sweep with a vectorized prefilter.

    Returns the **byte-identical** removed list of
    :func:`~repro.core.flat_dominance.flat_one_pass_dominance`.  The numpy
    preamble computes the sweep order (one stable argsort instead of an
    O(n log n) interpreted sort) and pre-certifies the *leaf wave*: every
    vertex with an initial leaf neighbour is provably dominated at its own
    sweep turn — a leaf's degree cannot change while its sole neighbour is
    alive, and the sweep order (initial degree descending, id ascending)
    guarantees the neighbour's turn comes first — so the sweep removes it
    without any subset scans.  For K₂ components the earlier endpoint
    (smaller id) is certified by the same argument.  Everything else runs
    an exact subset test equivalent to the flat sweep's, on identical
    state at every turn, so the decision sequence never diverges.
    """
    if _np is None:
        from .flat_dominance import flat_one_pass_dominance

        return flat_one_pass_dominance(graph)
    np = _np
    n = graph.n
    if n == 0:
        return []
    offsets, targets = graph.flat_csr()
    xadj64 = np.frombuffer(offsets, dtype=np.int64)
    if len(targets):
        adj32 = np.frombuffer(targets, dtype=np.int32)
    else:
        adj32 = np.zeros(0, dtype=np.int32)
    degv = np.diff(xadj64)
    # Leaf wave: vertices certain to be removed at their turn.  A leaf's
    # row holds exactly its partner, so the set of vertices with an
    # initial leaf neighbour is just the (deduplicating) scatter of the
    # leaf partners — no per-edge pass needed.
    is_leaf = degv == 1
    leaf_ids = np.flatnonzero(is_leaf)
    certified = np.zeros(n, dtype=bool)
    if leaf_ids.size:
        partner = adj32[xadj64[leaf_ids]].astype(np.int64)
        certified[partner[degv[partner] >= 2]] = True
        certified[leaf_ids[is_leaf[partner] & (leaf_ids < partner)]] = True
    skip_test = bytearray(certified.astype(np.uint8).tobytes())
    # Stable argsort on negated degree == (degree desc, id asc).
    order = np.argsort(-degv, kind="stable").tolist()
    deg = degv.tolist()
    xadj = xadj64.tolist()
    adj = adj32.tolist()
    # Scalar sweep — identical decision sequence to flat_one_pass_dominance.
    # Three restructurings, none able to change a decision:
    #
    # * candidates-first: rows that produce no candidates (or are
    #   dominated by a leaf outright) never reach the subset scans;
    # * subset tests by binary search: ``N[v] ⊆ N[u]`` is checked by
    #   bisecting each live ``x ∈ N(v)`` into ``u``'s sorted row (the
    #   :meth:`~repro.graphs.static_graph.Graph.flat_csr` contract)
    #   instead of stamping ``u``'s whole neighbourhood first — the
    #   sweep order visits hubs first, whose O(Δ) stamping passes almost
    #   always certified a *non*-removal.  The test itself is exact, so
    #   the decision boolean is unchanged;
    # * liveness folded into ``deg``: a removed vertex gets ``deg 0``,
    #   and inside any scanned row a live vertex always has ``deg ≥ 1``
    #   (it is adjacent to the live row owner), so ``deg[w] != 0`` is
    #   equivalent to the separate ``alive[w]`` flag.  A live vertex that
    #   *became* isolated is skipped at its turn, where the original
    #   scanned its all-dead row and decided nothing.
    removed: List[int] = []
    candidates: List[int] = []
    for u in order:
        du = deg[u]
        if not du:
            continue
        row_u = adj[xadj[u] : xadj[u + 1]]
        dominated = False
        if skip_test[u]:
            dominated = True
        else:
            candidates.clear()
            for w in row_u:
                dw = deg[w]
                if dw and dw <= du:
                    if dw == 1:
                        dominated = True
                        break
                    candidates.append(w)
            if not dominated and candidates:
                row_len = len(row_u)
                candidates.sort(key=deg.__getitem__)
                for v in candidates:
                    for x in adj[xadj[v] : xadj[v + 1]]:
                        if deg[x] and x != u:
                            j = bisect_left(row_u, x)
                            if j >= row_len or row_u[j] != x:
                                break
                    else:
                        dominated = True
                        break
        if dominated:
            removed.append(u)
            deg[u] = 0
            for w in row_u:
                if deg[w]:
                    deg[w] -= 1
    return removed


# ----------------------------------------------------------------------
# Registry-facing solvers (module-level, picklable by reference)
# ----------------------------------------------------------------------
def linear_time_vec(graph: Graph) -> MISResult:
    """LinearTime on the vectorized backend (``LinearTime-vec``)."""
    from .linear_time import linear_time

    return replace(
        linear_time(graph, workspace_factory=VecWorkspace),
        algorithm="LinearTime-vec",
    )


def bdone_vec(graph: Graph) -> MISResult:
    """BDOne on the vectorized backend (``BDOne-vec``)."""
    from .bdone import bdone

    return replace(
        bdone(graph, workspace_factory=VecWorkspace), algorithm="BDOne-vec"
    )


def near_linear_vec(graph: Graph) -> MISResult:
    """NearLinear with vectorized dominance + LP phases (``NearLinear-vec``).

    Phase 1 runs :func:`vectorized_one_pass_dominance` (identical removed
    list) and phase 2 runs
    :func:`~repro.core.vec_lp.vec_lp_reduction` (identical half-integral
    classification), so the whole downstream pipeline (LP kernel, triangle
    workspace, peels) matches the flat backend decision-for-decision.
    """
    from .near_linear import near_linear
    from .vec_lp import vec_lp_reduction

    return replace(
        near_linear(
            graph, sweep=vectorized_one_pass_dominance, lp=vec_lp_reduction
        ),
        algorithm="NearLinear-vec",
    )


def linear_time_vec_reduce(graph: Graph) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize with LinearTime's exact rules on the vectorized backend."""
    from .linear_time import linear_time_reduce

    return linear_time_reduce(graph, workspace_factory=VecWorkspace)


def near_linear_vec_reduce(graph: Graph) -> Tuple[Graph, List[int], DecisionLog]:
    """Kernelize with NearLinear's exact rules, vectorized phase-1/2."""
    from .near_linear import near_linear_reduce
    from .vec_lp import vec_lp_reduction

    return near_linear_reduce(
        graph, sweep=vectorized_one_pass_dominance, lp=vec_lp_reduction
    )
