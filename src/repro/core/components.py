"""Per-component solving: divide a disconnected graph, conquer each piece.

Independent sets compose over connected components
(``α(G) = Σ α(Gᵢ)``), so running an algorithm per component is both exact
and often faster in practice: the max-degree peeling order then cannot
jump between unrelated regions, and the Theorem-6.1 certificate becomes
per-component (one stubborn component no longer voids the bound earned on
the easy ones — the composed slack is the *sum* of per-component slacks,
never more).
"""

from __future__ import annotations

import time
from typing import Callable, List

from ..graphs.properties import connected_components
from ..graphs.static_graph import Graph
from .result import MISResult

__all__ = ["solve_by_components"]


def solve_by_components(
    graph: Graph, algorithm: Callable[[Graph], MISResult]
) -> MISResult:
    """Run ``algorithm`` on every connected component and merge the results.

    The merged result's upper bound is the sum of the per-component bounds
    (valid because α is additive over components) and the certificate holds
    iff every component certified.
    """
    start = time.perf_counter()
    components = connected_components(graph)
    vertices: List[int] = []
    upper_bound = 0
    peeled = 0
    surviving = 0
    stats: dict = {}
    algorithm_name = "unknown"
    for component in components:
        subgraph, old_ids = graph.subgraph(component)
        result = algorithm(subgraph)
        algorithm_name = result.algorithm
        vertices.extend(old_ids[v] for v in result.independent_set)
        upper_bound += result.upper_bound
        peeled += result.peeled
        surviving += result.surviving_peels
        for rule, count in result.stats.items():
            stats[rule] = stats.get(rule, 0) + count
    return MISResult(
        algorithm=f"{algorithm_name}/components",
        graph_name=graph.name,
        independent_set=frozenset(vertices),
        upper_bound=upper_bound,
        peeled=peeled,
        surviving_peels=surviving,
        is_exact=surviving == 0,
        stats=stats,
        elapsed=time.perf_counter() - start,
    )
