"""Per-component solving: divide a disconnected graph, conquer each piece.

Independent sets compose over connected components
(``α(G) = Σ α(Gᵢ)``), so running an algorithm per component is both exact
and often faster in practice: the max-degree peeling order then cannot
jump between unrelated regions, and the Theorem-6.1 certificate becomes
per-component (one stubborn component no longer voids the bound earned on
the easy ones — the composed slack is the *sum* of per-component slacks,
never more).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Iterable, List

from ..graphs.properties import connected_components
from ..graphs.static_graph import Graph
from .result import MISResult

__all__ = ["affected_region", "solve_by_components", "touched_components"]


def affected_region(graph: Graph, seeds: Iterable[int], radius: int = 2) -> List[int]:
    """Vertices within ``radius`` hops of any seed, sorted ascending.

    The invalidation primitive behind localized repair
    (:mod:`repro.serve`): a batch of graph mutations dirties the seed
    vertices, and only this bounded neighbourhood needs its independent-set
    decisions revisited — everything further away keeps its previous
    status.  ``radius=0`` returns the (live, deduplicated) seeds themselves.
    """
    seen = bytearray(graph.n)
    frontier: List[int] = []
    for v in seeds:
        if 0 <= v < graph.n and not seen[v]:
            seen[v] = 1
            frontier.append(v)
    region = list(frontier)
    for _ in range(radius):
        if not frontier:
            break
        next_frontier: List[int] = []
        for u in frontier:
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    next_frontier.append(v)
        region.extend(next_frontier)
        frontier = next_frontier
    region.sort()
    return region


def touched_components(graph: Graph, seeds: Iterable[int]) -> List[List[int]]:
    """The connected components of ``graph`` containing any seed vertex.

    Each component is a sorted vertex list; components are returned largest
    first (matching :func:`repro.graphs.properties.connected_components`).
    Used by the serving layer to decide which per-component results a
    mutation batch invalidates: a component with no seed is untouched and
    its cached solution restriction stays valid verbatim.
    """
    seen = bytearray(graph.n)
    components: List[List[int]] = []
    for start in seeds:
        if not 0 <= start < graph.n or seen[start]:
            continue
        seen[start] = 1
        queue = deque([start])
        component = [start]
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    component.append(v)
                    queue.append(v)
        component.sort()
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def solve_by_components(
    graph: Graph, algorithm: Callable[[Graph], MISResult]
) -> MISResult:
    """Run ``algorithm`` on every connected component and merge the results.

    The merged result's upper bound is the sum of the per-component bounds
    (valid because α is additive over components) and the certificate holds
    iff every component certified.
    """
    start = time.perf_counter()
    components = connected_components(graph)
    vertices: List[int] = []
    upper_bound = 0
    peeled = 0
    surviving = 0
    stats: dict = {}
    algorithm_name = "unknown"
    for component in components:
        subgraph, old_ids = graph.subgraph(component)
        result = algorithm(subgraph)
        algorithm_name = result.algorithm
        vertices.extend(old_ids[v] for v in result.independent_set)
        upper_bound += result.upper_bound
        peeled += result.peeled
        surviving += result.surviving_peels
        for rule, count in result.stats.items():
            stats[rule] = stats.get(rule, 0) + count
    return MISResult(
        algorithm=f"{algorithm_name}/components",
        graph_name=graph.name,
        independent_set=frozenset(vertices),
        upper_bound=upper_bound,
        peeled=peeled,
        surviving_peels=surviving,
        is_exact=surviving == 0,
        stats=stats,
        elapsed=time.perf_counter() - start,
    )
