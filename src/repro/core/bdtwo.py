"""BDTwo — the effective baseline (paper Algorithm 3, Section 3.3).

Reducing-Peeling with the degree-one reduction plus the *degree-two vertex*
reductions of Lemma 2.2:

* **isolation** — a degree-two vertex whose neighbours are adjacent joins
  the solution, its neighbours are removed;
* **folding** — a degree-two vertex with non-adjacent neighbours is
  contracted with them into a supervertex; the decision is backtracked once
  the rest of the graph is solved.

Contraction can *enlarge* neighbourhoods, so BDTwo needs a dynamic
adjacency-set representation (the paper's 6m + O(n) mutual-reference
adjacency lists) and is not linear time: Theorem 3.1 exhibits a Θ(n)-edge
family on which it spends Ω(n log n) (see
:func:`repro.graphs.named.bdtwo_lower_bound_family`).
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..graphs.static_graph import Graph
from .bucket_queue import MaxDegreeSelector
from .result import (
    STAT_DEGREE_ONE,
    STAT_DEGREE_TWO_FOLDING,
    STAT_DEGREE_TWO_ISOLATION,
    STAT_PEEL,
    MISResult,
)
from .trace import DecisionLog
from ..obs.instrument import traced_replay
from ..obs.telemetry import get_telemetry, phase

__all__ = ["bdtwo"]


class _DynamicWorkspace:
    """Adjacency-set graph state supporting deletion and contraction."""

    __slots__ = ("n", "adj", "deg", "alive", "log", "v1", "v2", "_selector")

    def __init__(self, graph: Graph) -> None:
        self.n = graph.n
        self.adj: List[set] = graph.adjacency_sets()
        self.deg: List[int] = graph.degrees()
        self.alive = bytearray([1]) * graph.n if graph.n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        for v in range(self.n):
            d = self.deg[v]
            if d == 0:
                self.alive[v] = 0
                self.log.include(v)
            elif d == 1:
                self.v1.append(v)
            elif d == 2:
                self.v2.append(v)

    # -- queue management ------------------------------------------------
    def pop_degree(self, queue: List[int], target: int) -> Optional[int]:
        """Pop a live vertex of exactly ``target`` degree from ``queue``."""
        while queue:
            v = queue.pop()
            if self.alive[v] and self.deg[v] == target:
                return v
        return None

    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.alive[w] = 0
            self.log.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    # -- mutations ---------------------------------------------------------
    def delete_vertex(self, v: int, reason: Optional[str]) -> None:
        """Remove ``v`` eagerly from all neighbour sets.

        ``reason`` is ``"exclude"``, ``"peel"`` or ``None`` (silent — used
        for the folded vertex whose fate the fold record decides later).
        """
        self.alive[v] = 0
        if reason == "peel":
            self.log.peel(v)
        elif reason == "exclude":
            self.log.exclude(v)
        for w in self.adj[v]:
            self.adj[w].discard(v)
            self.deg[w] -= 1
            self._refile(w)
        self.adj[v] = set()
        self.deg[v] = 0

    def contract(self, v: int, w: int) -> None:
        """Merge ``v`` into ``w`` (paper's ``Contract``); ``v`` disappears.

        Precondition: ``v`` and ``w`` are live and non-adjacent (the folded
        middle vertex was already deleted).  Neighbour degrees stay fixed
        when they trade the edge to ``v`` for one to ``w``, and drop by one
        when the two edges merge.
        """
        self.alive[v] = 0
        gained = 0
        adj_w = self.adj[w]
        for x in self.adj[v]:
            self.adj[x].discard(v)
            if x in adj_w:
                self.deg[x] -= 1
                self._refile(x)
            else:
                adj_w.add(x)
                self.adj[x].add(w)
                gained += 1
        self.adj[v] = set()
        self.deg[v] = 0
        if gained:
            self.deg[w] += gained
            if self._selector is not None:
                self._selector.notify_increase(w)
        self._refile(w)

    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()


def bdtwo(graph: Graph) -> MISResult:
    """Compute a maximal independent set of ``graph`` with BDTwo."""
    start = time.perf_counter()
    telemetry = get_telemetry()  # one global check per run
    with phase(telemetry, "setup", algorithm="BDTwo", graph=graph.name):
        ws = _DynamicWorkspace(graph)
    log = ws.log
    # BDTwo's dynamic workspace does not maintain the PR-1 live counters
    # (contraction makes them ambiguous), so it gets phase spans and
    # counter snapshots but no sampled peeling profile.
    with phase(telemetry, "reduce", algorithm="BDTwo", graph=graph.name) as span:
        while True:
            u = ws.pop_degree(ws.v1, 1)
            if u is not None:
                (v,) = ws.adj[u]
                ws.delete_vertex(v, "exclude")
                log.bump(STAT_DEGREE_ONE)
                continue
            u = ws.pop_degree(ws.v2, 2)
            if u is not None:
                v, w = ws.adj[u]
                if w in ws.adj[v]:
                    ws.delete_vertex(v, "exclude")
                    ws.delete_vertex(w, "exclude")
                    log.bump(STAT_DEGREE_TWO_ISOLATION)
                else:
                    log.fold(u, v, w)
                    ws.delete_vertex(u, None)
                    ws.contract(v, w)
                    log.bump(STAT_DEGREE_TWO_FOLDING)
                continue
            u = ws.pop_max_degree()
            if u is None:
                break
            ws.delete_vertex(u, "peel")
            log.bump(STAT_PEEL)
        span.meta["counters"] = dict(log.stats)
    if telemetry is not None:
        telemetry.add_counters(log.stats)
        outcome = traced_replay(log, graph, telemetry, "BDTwo")
    else:
        outcome = log.replay(graph)
    return MISResult(
        algorithm="BDTwo",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(log.stats),
        elapsed=time.perf_counter() - start,
    )
