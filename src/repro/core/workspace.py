"""Mutable run-time graph state for the adjacency-array algorithms.

Two interchangeable backends implement the same mutation protocol:

* :class:`ArrayWorkspace` — the original list-of-lists backend, kept as the
  readable correctness oracle.  It mirrors the paper's 2m + O(n) memory
  discipline: the adjacency arrays copied from the input graph never grow —
  vertices are *marked* deleted (Section 3.2, "Implementation Details") and
  the degree-two path reductions mutate adjacency entries in place instead
  of inserting edges (Section 4, "Analysis and Implementation Details").
* :class:`FlatWorkspace` — the production backend: one flat ``array('i')``
  of adjacency targets indexed by the graph's CSR offsets, flat degree and
  alive buffers, incrementally maintained live-vertex/live-edge counters,
  and a per-vertex position hint that makes repeated rewiring of the same
  slot O(1).  Construction is a C-level buffer copy instead of ``n`` list
  allocations.  This is the layout the paper itself describes (Section 2).

Both workspaces own the degree-one / degree-two worklists (``V₌₁`` / ``V₌₂``
in the pseudocode), the lazy max-degree selector used by peeling, and the
:class:`~repro.core.trace.DecisionLog` that later reconstructs the solution.
Worklists are lazy stacks: vertices are pushed whenever their degree *reaches*
the target value and validated on pop, so each vertex may appear several
times but total queue traffic is bounded by the number of degree decrements,
i.e. O(m).

Given the same graph, the two backends make **identical decision sequences**:
adjacency rows start in the same (sorted) order, rewiring replaces the same
(unique) entry, and deletions re-file neighbours in the same order — a
property the differential test suite asserts log-for-log.
"""

from __future__ import annotations

from array import array
from operator import sub
from typing import List, Optional, Sequence, Tuple

from ..graphs.static_graph import Graph
from .bucket_queue import MaxDegreeSelector
from .trace import DecisionLog

__all__ = ["ArrayWorkspace", "FlatWorkspace", "compact_remap"]


def compact_remap(alive: Sequence[int], n: int) -> Tuple[array, List[int]]:
    """Flat old→new id map over the live vertices.

    Returns ``(remap, old_ids)`` where ``remap`` is an ``array('i')`` of
    length ``n`` holding the compacted new id of every live vertex (dead
    vertices map to ``-1``) and ``old_ids[new] = old``.  Shared by every
    workspace's ``export_kernel`` so kernel compaction needs no ``{old:
    new}`` dict of boxed pairs.
    """
    remap = array("i", bytes(4 * n))  # zero-filled
    old_ids: List[int] = []
    append = old_ids.append
    new = 0
    for v in range(n):
        if alive[v]:
            remap[v] = new
            append(v)
            new += 1
        else:
            remap[v] = -1
    return remap, old_ids


class ArrayWorkspace:
    """Deletion-tolerant adjacency-array state shared by BDOne/LinearTime."""

    __slots__ = (
        "graph",
        "n",
        "adj",
        "deg",
        "alive",
        "log",
        "v1",
        "v2",
        "_selector",
        "_nlive",
        "_live_deg_sum",
    )

    def __init__(self, graph: Graph, track_degree_two: bool = False) -> None:
        self.graph = graph
        self.n = graph.n
        self.adj: List[List[int]] = graph.adjacency_lists()
        self.deg: List[int] = graph.degrees()
        self.alive = bytearray([1]) * graph.n if graph.n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        self._nlive = self.n
        self._live_deg_sum = 2 * graph.m
        for v in range(self.n):
            d = self.deg[v]
            if d == 0:
                self.alive[v] = 0
                self._nlive -= 1
                self.log.include(v)
            elif d == 1:
                self.v1.append(v)
            elif d == 2 and track_degree_two:
                self.v2.append(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """The current neighbours of ``v`` (skipping deleted vertices)."""
        alive = self.alive
        return [w for w in self.adj[v] if alive[w]]

    def iter_live_neighbors(self, v: int) -> List[int]:
        """Generator over current neighbours of ``v``."""
        alive = self.alive
        return (w for w in self.adj[v] if alive[w])

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` exists.

        Scans the smaller current neighbourhood, as the paper does instead
        of hashing all edges (Section 4, implementation details).
        """
        if self.deg[u] > self.deg[v]:
            u, v = v, u
        alive = self.alive
        for w in self.adj[u]:
            if w == v and alive[w]:
                return True
        return False

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices (O(1), counter-maintained)."""
        return self._nlive

    def live_edge_count(self) -> int:
        """Number of live edges (O(1), counter-maintained)."""
        return self._live_deg_sum // 2

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None`` if V₌₁ is empty."""
        while self.v1:
            v = self.v1.pop()
            if self.alive[v] and self.deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None`` if V₌₂ is empty."""
        while self.v2:
            v = self.v2.pop()
            if self.alive[v] and self.deg[v] == 2:
                return v
        return None

    def include(self, v: int) -> None:
        """Commit ``v`` (degree zero) to the independent set."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]
        self.log.include(v)

    def delete_vertex(self, v: int, reason: str = "exclude") -> None:
        """Remove ``v`` and its edges; ``reason`` is ``exclude`` or ``peel``.

        Mirrors the paper's ``DeleteVertex``: each live neighbour's degree
        drops and the neighbour is re-filed into the appropriate worklist
        (or committed to the solution at degree zero).
        """
        alive = self.alive
        deg = self.deg
        alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= deg[v]
        if reason == "peel":
            self.log.peel(v)
        else:
            self.log.exclude(v)
        for w in self.adj[v]:
            if alive[w]:
                deg[w] -= 1
                self._live_deg_sum -= 1
                self._refile(w)

    def remove_silently(self, v: int) -> None:
        """Mark ``v`` dead without logging or touching neighbour degrees.

        Used by the path reductions for interior path vertices whose fate
        is deferred to the reconstruction stack; callers are responsible
        for fixing the degrees of the surviving endpoints.
        """
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace the adjacency entry ``old`` with ``new`` in ``adj[v]``.

        This is the in-place edge modification of Section 4 that lets
        LinearTime "add" the edges of Figures 4(c)/4(e) without growing
        any adjacency array.
        """
        row = self.adj[v]
        row[row.index(old)] = new

    def settle_new_edge(self, a: int, b: int) -> None:
        """No-op hook: the array workspace keeps no per-edge metadata.

        The triangle workspace overrides this to recompute δ(a, b) after a
        Figure 4(e) rewiring; having the hook here lets both workspaces
        share the Lemma 4.1 driver.
        """

    def decrement_degree(self, v: int) -> None:
        """Drop ``deg(v)`` by one and re-file ``v`` (endpoint bookkeeping)."""
        self.deg[v] -= 1
        self._live_deg_sum -= 1
        self._refile(v)

    def refile(self, v: int) -> None:
        """Public re-file hook (after a rewire that kept the degree)."""
        self._refile(v)

    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    # ------------------------------------------------------------------
    # Peeling support
    # ------------------------------------------------------------------
    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue; O(m) total)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """The live residual graph, compacted, plus the id mapping.

        Returns ``(kernel, old_ids)`` with ``old_ids[new] = original id``.
        Used when an algorithm stops right before its first peel to hand
        the kernel to a downstream solver (Section 6).
        """
        alive = self.alive
        remap, old_ids = compact_remap(alive, self.n)
        offsets = [0]
        targets: List[int] = []
        for old in old_ids:
            row = sorted(remap[w] for w in self.adj[old] if alive[w])
            targets.extend(row)
            offsets.append(len(targets))
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        return Graph(offsets, targets, name=name), old_ids


class FlatWorkspace:
    """Flat-buffer CSR workspace — the cache-friendly production backend.

    Public surface and decision behaviour are identical to
    :class:`ArrayWorkspace`; the representation differs:

    ``adj``
        One flat ``array('i')`` holding every adjacency entry, a mutable
        copy of the graph's cached CSR target buffer (2m words).
    ``xadj``
        The graph's CSR offsets (``array('q')``, shared read-only);
        vertex ``v``'s entries live at ``adj[xadj[v] : xadj[v + 1]]``.
    ``deg`` / ``alive``
        Flat ``array('i')`` / ``bytearray`` buffers (O(n) words).

    Live-vertex and live-edge counts are maintained incrementally on every
    mutation, so kernel snapshots and progress reporting are O(1) instead
    of an O(n) rescan.  ``rewire`` keeps a per-vertex position hint: the
    Lemma 4.1 rewirings repeatedly retarget the *same* adjacency slot of a
    path anchor, so the hint turns the entry search into O(1) amortised.
    """

    __slots__ = (
        "graph",
        "n",
        "adj",
        "xadj",
        "deg",
        "alive",
        "log",
        "v1",
        "v2",
        "_selector",
        "_hint",
        "_nlive",
        "_live_deg_sum",
    )

    def __init__(self, graph: Graph, track_degree_two: bool = False) -> None:
        self.graph = graph
        n = self.n = graph.n
        offsets, targets = graph.flat_csr()
        self.xadj = offsets
        self.adj = targets[:]  # C-level memcpy; rewiring mutates the copy
        self.deg = array("i", map(sub, offsets[1:], offsets))
        self.alive = bytearray([1]) * n if n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        self._hint = array("q", offsets[:-1]) if n else array("q")
        self._nlive = n
        self._live_deg_sum = len(targets)
        deg = self.deg
        log_include = self.log.include
        alive = self.alive
        v1_append = self.v1.append
        v2_append = self.v2.append
        for v in range(n):
            d = deg[v]
            if d > 2:
                continue
            if d == 0:
                alive[v] = 0
                self._nlive -= 1
                log_include(v)
            elif d == 1:
                v1_append(v)
            elif track_degree_two:
                v2_append(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """The current neighbours of ``v`` (skipping deleted vertices)."""
        alive = self.alive
        xadj = self.xadj
        return [w for w in self.adj[xadj[v] : xadj[v + 1]] if alive[w]]

    def iter_live_neighbors(self, v: int) -> List[int]:
        """Current neighbours of ``v`` (an iterable; eagerly materialised —
        a list comprehension over the row slice beats generator resumption
        on the short rows the path driver walks)."""
        alive = self.alive
        xadj = self.xadj
        return [w for w in self.adj[xadj[v] : xadj[v + 1]] if alive[w]]

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` exists (scan the smaller side)."""
        deg = self.deg
        if deg[u] > deg[v]:
            u, v = v, u
        if not self.alive[v]:
            return False
        xadj = self.xadj
        return v in self.adj[xadj[u] : xadj[u + 1]]

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices (O(1), counter-maintained)."""
        return self._nlive

    def live_edge_count(self) -> int:
        """Number of live edges (O(1), counter-maintained)."""
        return self._live_deg_sum // 2

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None`` if V₌₁ is empty."""
        alive = self.alive
        deg = self.deg
        v1 = self.v1
        while v1:
            v = v1.pop()
            if alive[v] and deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None`` if V₌₂ is empty."""
        alive = self.alive
        deg = self.deg
        v2 = self.v2
        while v2:
            v = v2.pop()
            if alive[v] and deg[v] == 2:
                return v
        return None

    def include(self, v: int) -> None:
        """Commit ``v`` (degree zero) to the independent set."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]
        self.log.include(v)

    def delete_vertex(self, v: int, reason: str = "exclude") -> None:
        """Remove ``v`` and its edges (degree drop + re-file per neighbour)."""
        alive = self.alive
        deg = self.deg
        adj = self.adj
        xadj = self.xadj
        alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= deg[v]
        if reason == "peel":
            self.log.peel(v)
        else:
            self.log.exclude(v)
        v1_append = self.v1.append
        v2_append = self.v2.append
        removed = 0
        for w in adj[xadj[v] : xadj[v + 1]]:
            if alive[w]:
                removed += 1
                d = deg[w] - 1
                deg[w] = d
                if d == 1:
                    v1_append(w)
                elif d == 2:
                    v2_append(w)
                elif d == 0:
                    alive[w] = 0
                    self._nlive -= 1
                    self.log.include(w)
        self._live_deg_sum -= removed

    def remove_silently(self, v: int) -> None:
        """Mark ``v`` dead without logging or touching neighbour degrees."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace the adjacency entry ``old`` with ``new`` in ``v``'s row.

        Starts the search at the per-vertex hint — Lemma 4.1 retargets the
        same anchor slot on consecutive path reductions, so the common case
        is O(1); otherwise the row (never containing duplicates) is scanned
        once and the hint updated.
        """
        adj = self.adj
        i = self._hint[v]
        if adj[i] != old or not self.xadj[v] <= i < self.xadj[v + 1]:
            i = self.xadj[v]
            hi = self.xadj[v + 1]
            while adj[i] != old:
                i += 1
                if i >= hi:
                    raise ValueError(f"{old} is not an adjacency entry of {v}")
        adj[i] = new
        self._hint[v] = i

    def settle_new_edge(self, a: int, b: int) -> None:
        """No-op hook: the flat workspace keeps no per-edge metadata."""

    def decrement_degree(self, v: int) -> None:
        """Drop ``deg(v)`` by one and re-file ``v`` (endpoint bookkeeping)."""
        self.deg[v] -= 1
        self._live_deg_sum -= 1
        self._refile(v)

    def refile(self, v: int) -> None:
        """Public re-file hook (after a rewire that kept the degree)."""
        self._refile(v)

    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    # ------------------------------------------------------------------
    # Peeling support
    # ------------------------------------------------------------------
    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue; O(m) total)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """The live residual graph, compacted, plus the id mapping."""
        alive = self.alive
        adj = self.adj
        xadj = self.xadj
        remap, old_ids = compact_remap(alive, self.n)
        offsets = [0]
        targets: List[int] = []
        extend = targets.extend
        for old in old_ids:
            row = sorted(
                remap[w] for w in adj[xadj[old] : xadj[old + 1]] if alive[w]
            )
            extend(row)
            offsets.append(len(targets))
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        return Graph(offsets, targets, name=name), old_ids
