"""Mutable run-time graph state for the adjacency-array algorithms.

:class:`ArrayWorkspace` backs BDOne and LinearTime.  It keeps the paper's
2m + O(n) memory discipline: the adjacency arrays copied from the input
graph never grow — vertices are *marked* deleted (Section 3.2,
"Implementation Details") and the degree-two path reductions mutate adjacency
entries in place instead of inserting edges (Section 4, "Analysis and
Implementation Details").

The workspace owns the degree-one / degree-two worklists (``V₌₁`` / ``V₌₂``
in the pseudocode), the lazy max-degree selector used by peeling, and the
:class:`~repro.core.trace.DecisionLog` that later reconstructs the solution.
Worklists are lazy stacks: vertices are pushed whenever their degree *reaches*
the target value and validated on pop, so each vertex may appear several
times but total queue traffic is bounded by the number of degree decrements,
i.e. O(m).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graphs.static_graph import Graph
from .bucket_queue import MaxDegreeSelector
from .trace import DecisionLog

__all__ = ["ArrayWorkspace"]


class ArrayWorkspace:
    """Deletion-tolerant adjacency-array state shared by BDOne/LinearTime."""

    __slots__ = ("graph", "n", "adj", "deg", "alive", "log", "v1", "v2", "_selector")

    def __init__(self, graph: Graph, track_degree_two: bool = False) -> None:
        self.graph = graph
        self.n = graph.n
        self.adj: List[List[int]] = graph.adjacency_lists()
        self.deg: List[int] = graph.degrees()
        self.alive = bytearray([1]) * graph.n if graph.n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        for v in range(self.n):
            d = self.deg[v]
            if d == 0:
                self.alive[v] = 0
                self.log.include(v)
            elif d == 1:
                self.v1.append(v)
            elif d == 2 and track_degree_two:
                self.v2.append(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """The current neighbours of ``v`` (skipping deleted vertices)."""
        alive = self.alive
        return [w for w in self.adj[v] if alive[w]]

    def iter_live_neighbors(self, v: int):
        """Generator over current neighbours of ``v``."""
        alive = self.alive
        return (w for w in self.adj[v] if alive[w])

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` exists.

        Scans the smaller current neighbourhood, as the paper does instead
        of hashing all edges (Section 4, implementation details).
        """
        if self.deg[u] > self.deg[v]:
            u, v = v, u
        alive = self.alive
        for w in self.adj[u]:
            if w == v and alive[w]:
                return True
        return False

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices."""
        return sum(self.alive)

    def live_edge_count(self) -> int:
        """Number of live edges (O(m) scan; used for kernel export)."""
        alive = self.alive
        total = 0
        for v in range(self.n):
            if alive[v]:
                total += self.deg[v]
        return total // 2

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None`` if V₌₁ is empty."""
        while self.v1:
            v = self.v1.pop()
            if self.alive[v] and self.deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None`` if V₌₂ is empty."""
        while self.v2:
            v = self.v2.pop()
            if self.alive[v] and self.deg[v] == 2:
                return v
        return None

    def include(self, v: int) -> None:
        """Commit ``v`` (degree zero) to the independent set."""
        self.alive[v] = 0
        self.log.include(v)

    def delete_vertex(self, v: int, reason: str = "exclude") -> None:
        """Remove ``v`` and its edges; ``reason`` is ``exclude`` or ``peel``.

        Mirrors the paper's ``DeleteVertex``: each live neighbour's degree
        drops and the neighbour is re-filed into the appropriate worklist
        (or committed to the solution at degree zero).
        """
        alive = self.alive
        deg = self.deg
        alive[v] = 0
        if reason == "peel":
            self.log.peel(v)
        else:
            self.log.exclude(v)
        for w in self.adj[v]:
            if alive[w]:
                deg[w] -= 1
                self._refile(w)

    def remove_silently(self, v: int) -> None:
        """Mark ``v`` dead without logging or touching neighbour degrees.

        Used by the path reductions for interior path vertices whose fate
        is deferred to the reconstruction stack; callers are responsible
        for fixing the degrees of the surviving endpoints.
        """
        self.alive[v] = 0

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace the adjacency entry ``old`` with ``new`` in ``adj[v]``.

        This is the in-place edge modification of Section 4 that lets
        LinearTime "add" the edges of Figures 4(c)/4(e) without growing
        any adjacency array.
        """
        row = self.adj[v]
        row[row.index(old)] = new

    def settle_new_edge(self, a: int, b: int) -> None:
        """No-op hook: the array workspace keeps no per-edge metadata.

        The triangle workspace overrides this to recompute δ(a, b) after a
        Figure 4(e) rewiring; having the hook here lets both workspaces
        share the Lemma 4.1 driver.
        """

    def decrement_degree(self, v: int) -> None:
        """Drop ``deg(v)`` by one and re-file ``v`` (endpoint bookkeeping)."""
        self.deg[v] -= 1
        self._refile(v)

    def refile(self, v: int) -> None:
        """Public re-file hook (after a rewire that kept the degree)."""
        self._refile(v)

    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    # ------------------------------------------------------------------
    # Peeling support
    # ------------------------------------------------------------------
    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue; O(m) total)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """The live residual graph, compacted, plus the id mapping.

        Returns ``(kernel, old_ids)`` with ``old_ids[new] = original id``.
        Used when an algorithm stops right before its first peel to hand
        the kernel to a downstream solver (Section 6).
        """
        alive = self.alive
        old_ids = [v for v in range(self.n) if alive[v]]
        new_id = {old: new for new, old in enumerate(old_ids)}
        offsets = [0]
        targets: List[int] = []
        for old in old_ids:
            row = sorted(new_id[w] for w in self.adj[old] if alive[w])
            targets.extend(row)
            offsets.append(len(targets))
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        return Graph(offsets, targets, name=name), old_ids
