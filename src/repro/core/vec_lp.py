"""Vectorized LP (Nemhauser–Trotter) reduction.

:func:`repro.core.lp_reduction.lp_reduction` computes the half-integral
LP optimum from a maximum matching on the bipartite double cover with a
pure-python Hopcroft–Karp.  On NearLinear's post-dominance residual the
matching itself is small but the *search space* is not: every BFS phase
re-enqueues every free left vertex and every DFS phase re-walks every
free root, so the scalar solver pays O(rounds · n) interpreter work for
a handful of augmentations.

This module keeps the DFS augmentation scalar (it follows one path at a
time by construction) but removes the interpreter from everything that
scans in bulk:

* a **seed matching** (Karp–Sipser-style rounds: forced degree-one moves
  when any left vertex has exactly one free neighbour, greedy
  propose-first-free-neighbour otherwise, with ``np.unique`` conflict
  resolution) establishes the vast majority of the maximum matching
  before Hopcroft–Karp starts, collapsing the number of augmentation
  phases — forced moves are always contained in *some* maximum matching,
  so on the forest-heavy residuals NearLinear produces they leave only a
  few hundred augmentations for the exact phases;
* each phase's **BFS layering** runs level-synchronously with ragged CSR
  gathers — identical ``dist`` layers to the scalar BFS, without the
  per-edge bytecode;
* a **reverse alternating-reachability pass** (from the free right
  vertices) filters the DFS roots: a free left that cannot reach any free
  right by *some* alternating path provably cannot augment, so the scalar
  DFS only ever starts from roots that might.  On sparse residuals this
  removes almost every root;
* the **König closure** and the final classification run as boolean-mask
  sweeps.

Correctness does not depend on reproducing the scalar matching: by the
Dulmage–Mendelsohn decomposition the set of vertices reachable from free
vertices by alternating paths is invariant across maximum matchings, so
the König cover — and therefore the included/excluded/remaining
classification — is *identical* for any maximum matching.  The
differential tests assert tuple-for-tuple equality against
:func:`lp_reduction` anyway.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..graphs.static_graph import Graph
from .lp_reduction import LPReductionResult, lp_reduction

try:  # pragma: no cover - exercised implicitly by every import site
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

__all__ = ["vec_lp_reduction"]

#: Seeding stops after this many forced/greedy rounds; whatever is left
#: unmatched is finished exactly by the Hopcroft–Karp phases.
_MAX_SEED_ROUNDS = 64

#: Below this size the numpy setup costs more than the scalar solver.
_MIN_VEC_N = 256


def _ragged(np: Any, xadj: Any, adj: Any, idx: Any) -> Tuple[Any, Any]:
    """Gather the adjacency rows of ``idx``: ``(targets, owners)``."""
    starts = xadj[idx]
    lens = xadj[idx + 1] - starts
    total = int(lens.sum())
    seg_ends = np.cumsum(lens)
    pos = np.arange(total, dtype=np.int64) - np.repeat(seg_ends - lens, lens)
    pos += np.repeat(starts, lens)
    return adj[pos], np.repeat(idx, lens)


def _greedy_seed(
    np: Any, xadj: Any, adj: Any, deg: Any, match_left: Any, match_right: Any
) -> None:
    """Seed the matching: forced degree-one rounds, greedy otherwise.

    Each round gathers the open edges (free left, free right) of every
    still-free left vertex.  When any left vertex has exactly *one* open
    edge the round applies all such forced moves — a degree-one vertex's
    only edge is contained in some maximum matching (the Karp–Sipser
    lemma), so forced rounds never walk the seed away from optimal.
    Otherwise every left proposes its first open neighbour.  In both
    cases contested right vertices resolve to the smallest proposer
    (``np.unique`` keeps first occurrences).  Purely an accelerator —
    any partial matching is a valid Hopcroft–Karp starting point.
    """
    free = np.flatnonzero((match_left == -1) & (deg > 0))
    for _ in range(_MAX_SEED_ROUNDS):
        if free.size == 0:
            return
        nbrs, owners = _ragged(np, xadj, adj, free)
        open_mask = match_right[nbrs] == -1
        ow = owners[open_mask]
        nb = nbrs[open_mask]
        if ow.size == 0:
            return
        # Open-edge count per still-free left (compacted bincount).
        pos = np.searchsorted(free, ow)
        cnt = np.bincount(pos, minlength=free.size)
        forced = cnt[pos] == 1
        if forced.any():
            # Forced lefts appear exactly once in ``ow`` — their single
            # open edge is the proposal.
            prop_u = ow[forced]
            prop_v = nb[forced]
        else:
            # First open neighbour per proposer (ow is segment-sorted).
            prop_u, first = np.unique(ow, return_index=True)
            prop_v = nb[first]
        # First proposer per contested right vertex wins; ``prop_u`` is
        # duplicate-free in both branches, so no left is matched twice.
        win_v, keep = np.unique(prop_v, return_index=True)
        win_u = prop_u[keep]
        match_left[win_u] = win_v
        match_right[win_v] = win_u
        free = free[match_left[free] == -1]


def _alternating_bfs(
    np: Any, xadj: Any, adj: Any, deg: Any, match_right: Any, dist: Any, inf: int
) -> bool:
    """Layer left vertices by alternating distance (one Hopcroft–Karp BFS).

    ``dist`` must arrive pre-seeded (0 on free lefts, ``inf`` elsewhere).
    Produces the same layers as the scalar queue BFS — level-synchronous
    expansion assigns each matched left its first-encounter layer — and
    returns whether any free right vertex was reached.
    """
    frontier = np.flatnonzero(dist == 0)
    frontier = frontier[deg[frontier] > 0]
    found = False
    layer = 0
    while frontier.size:
        layer += 1
        nbrs, _ = _ragged(np, xadj, adj, frontier)
        nxt = match_right[nbrs]
        if not found and bool((nxt == -1).any()):
            found = True
        cand = nxt[nxt >= 0]
        cand = np.unique(cand)
        cand = cand[dist[cand] == inf]
        dist[cand] = layer
        frontier = cand
    return found


def _reachable_roots(
    np: Any, xadj: Any, adj: Any, deg: Any, match_left: Any, match_right: Any
) -> Any:
    """Left vertices with *some* alternating path to a free right vertex.

    Reverse reachability: start from the free right vertices; any left
    neighbour can finish an augmenting path there, and its matched right
    partner extends the search.  A free left outside this set cannot
    augment this phase (or ever, until the matching changes), so the DFS
    skips it wholesale.  The filter is conservative — it never drops a
    root that could augment.
    """
    can_finish = np.zeros(match_left.shape[0], dtype=bool)
    seen_right = match_right == -1
    rights = np.flatnonzero(seen_right)
    rights = rights[deg[rights] > 0]
    while rights.size:
        nbrs, _ = _ragged(np, xadj, adj, rights)
        lefts = np.unique(nbrs)
        lefts = lefts[~can_finish[lefts]]
        can_finish[lefts] = True
        partners = match_left[lefts]
        partners = partners[partners >= 0]
        partners = partners[~seen_right[partners]]
        seen_right[partners] = True
        rights = partners
    return can_finish


def vec_lp_reduction(graph: Graph) -> LPReductionResult:
    """Classify every vertex by its half-integral LP value (vectorized).

    Returns the identical :class:`LPReductionResult` of
    :func:`~repro.core.lp_reduction.lp_reduction` (König covers are
    matching-invariant; see the module docstring).  Falls back to the
    scalar solver when numpy is unavailable or the graph is tiny.
    """
    n = graph.n
    if _np is None or n < _MIN_VEC_N:
        return lp_reduction(graph)
    np = _np
    offsets, targets = graph.flat_csr()
    xadj = np.frombuffer(offsets, dtype=np.int64)
    if len(targets):
        adj = np.frombuffer(targets, dtype=np.int32)
    else:
        adj = np.zeros(0, dtype=np.int32)
    deg = np.diff(xadj)
    match_left = np.full(n, -1, dtype=np.int64)
    match_right = np.full(n, -1, dtype=np.int64)
    _greedy_seed(np, xadj, adj, deg, match_left, match_right)
    # ------------------------------------------------------------------
    # Hopcroft–Karp phases: vectorized BFS + filtered scalar DFS.
    # ------------------------------------------------------------------
    inf = n + 1
    dist = np.empty(n, dtype=np.int64)
    adj_l = adj.tolist()
    xadj_l = xadj.tolist()
    ml: List[int] = match_left.tolist()
    mr: List[int] = match_right.tolist()
    while True:
        dist[:] = inf
        dist[match_left == -1] = 0
        if not _alternating_bfs(np, xadj, adj, deg, match_right, dist, inf):
            break
        roots = np.flatnonzero(
            (match_left == -1)
            & (deg > 0)
            & _reachable_roots(np, xadj, adj, deg, match_left, match_right)
        )
        dist_l = dist.tolist()
        _augment_roots(roots.tolist(), xadj_l, adj_l, dist_l, ml, mr, inf)
        match_left = np.asarray(ml, dtype=np.int64)
        match_right = np.asarray(mr, dtype=np.int64)
    # ------------------------------------------------------------------
    # König closure + classification (boolean-mask sweeps).
    # ------------------------------------------------------------------
    visited_left = np.zeros(n, dtype=bool)
    visited_right = np.zeros(n, dtype=bool)
    start = np.flatnonzero(match_left == -1)
    visited_left[start] = True
    frontier = start[deg[start] > 0]
    while frontier.size:
        nbrs, owners = _ragged(np, xadj, adj, frontier)
        vs = nbrs[match_left[owners] != nbrs]  # skip the matching edge
        vs = np.unique(vs)
        vs = vs[~visited_right[vs]]
        visited_right[vs] = True
        nxt = match_right[vs]
        nxt = nxt[nxt >= 0]
        nxt = nxt[~visited_left[nxt]]  # match_right is injective: no dups
        visited_left[nxt] = True
        frontier = nxt
    cover_left = ~visited_left
    cover_right = visited_right
    return LPReductionResult(
        tuple(np.flatnonzero(~cover_left & ~cover_right).tolist()),
        tuple(np.flatnonzero(cover_left & cover_right).tolist()),
        tuple(np.flatnonzero(cover_left ^ cover_right).tolist()),
    )


def _augment_roots(
    roots: List[int],
    xadj: List[int],
    adj: List[int],
    dist: List[int],
    match_left: List[int],
    match_right: List[int],
    inf: int,
) -> None:
    """One shortest augmenting path per root (scalar iterative DFS).

    The inner loop is the DFS of
    :func:`repro.core.lp_reduction._solve_csr`, lifted verbatim onto
    plain-list buffers; only the root enumeration differs (the caller
    pre-filters roots instead of scanning ``range(n)``).
    """
    nodes: List[int] = []
    ptrs: List[int] = []
    chosen: List[int] = []
    for root in roots:
        if match_left[root] != -1:
            continue
        nodes.append(root)
        ptrs.append(xadj[root])
        chosen.append(-1)
        while nodes:
            u = nodes[-1]
            j = ptrs[-1]
            hi = xadj[u + 1]
            layer = dist[u] + 1
            descended = False
            while j < hi:
                v = adj[j]
                j += 1
                nxt = match_right[v]
                if nxt == -1:
                    # Free right vertex: flip the whole alternating path.
                    chosen[-1] = v
                    for node, partner in zip(nodes, chosen):
                        match_left[node] = partner
                        match_right[partner] = node
                    nodes.clear()
                    ptrs.clear()
                    chosen.clear()
                    descended = True
                    break
                if dist[nxt] == layer:
                    ptrs[-1] = j
                    chosen[-1] = v
                    nodes.append(nxt)
                    ptrs.append(xadj[nxt])
                    chosen.append(-1)
                    descended = True
                    break
            if not descended:
                dist[u] = inf
                nodes.pop()
                ptrs.pop()
                chosen.pop()
