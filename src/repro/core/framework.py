"""The Reducing-Peeling framework (paper Algorithm 1) and its registry.

Algorithm 1 iterates two moves until the graph has no edges:

* **Reducing** — apply an exact reduction rule from the rule set ℛ;
* **Peeling** — if no rule applies, temporarily remove the highest-degree
  vertex (the inexact reduction, Definition 3.1).

Degree-zero vertices form the independent set, deferred decisions are
replayed, and the set is extended to a maximal one; peeled vertices that
re-enter during extension stop counting against the Theorem-6.1 bound.

The four paper instantiations are registered here under their paper names;
:func:`compute_independent_set` is the single entry point used by the
benchmark harness and the examples.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ReproError
from ..graphs.static_graph import Graph
from .bdone import bdone
from .bdtwo import bdtwo
from .linear_time import linear_time
from .near_linear import near_linear
from .result import MISResult
from .auto import bdone_auto, linear_time_auto, near_linear_auto
from .vectorized import bdone_vec, linear_time_vec, near_linear_vec

__all__ = ["ALGORITHMS", "compute_independent_set"]

#: The paper's four reducing-peeling algorithms (Table 1), by name, plus
#: the vectorized backend variants (``*-vec`` — batch frontier sweeps over
#: numpy buffers, see :mod:`repro.core.vectorized`) and the calibrated
#: per-instance dispatchers (``*-auto``, see :mod:`repro.core.auto`).
ALGORITHMS: Dict[str, Callable[[Graph], MISResult]] = {
    "BDOne": bdone,
    "BDTwo": bdtwo,
    "LinearTime": linear_time,
    "NearLinear": near_linear,
    "BDOne-vec": bdone_vec,
    "LinearTime-vec": linear_time_vec,
    "NearLinear-vec": near_linear_vec,
    "BDOne-auto": bdone_auto,
    "LinearTime-auto": linear_time_auto,
    "NearLinear-auto": near_linear_auto,
}


def compute_independent_set(graph: Graph, algorithm: str = "NearLinear") -> MISResult:
    """Run one of the reducing-peeling algorithms by name.

    ``algorithm`` is one of ``"BDOne"``, ``"BDTwo"``, ``"LinearTime"``,
    ``"NearLinear"`` (case-insensitive).  Raises
    :class:`~repro.errors.ReproError` for unknown names.
    """
    key = algorithm.strip().lower()
    for name, fn in ALGORITHMS.items():
        if name.lower() == key:
            return fn(graph)
    raise ReproError(
        f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
    )
