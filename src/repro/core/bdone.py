"""BDOne — the efficient baseline (paper Algorithm 2, Section 3.2).

Reducing-Peeling with the degree-one reduction as the only exact rule:

* while a degree-one vertex ``u`` exists, delete its unique neighbour
  (Lemma 2.1 — some maximum independent set contains ``u``);
* otherwise peel the highest-degree vertex (inexact reduction).

Runs in O(m) time and 2m + O(n) space thanks to mark-deleted adjacency
arrays and the lazy max-degree bucket queue.

Two execution paths share the decision semantics: a generic loop that
drives any workspace through its public mutation protocol (used with
:class:`~repro.core.workspace.ArrayWorkspace`, the correctness oracle), and
a specialized loop for :class:`~repro.core.workspace.FlatWorkspace` that
binds the flat buffers to locals once and appends decision-log entries
directly, eliminating the per-reduction attribute lookups and method calls
that otherwise dominate the constant factor.  Both paths produce identical
decision logs — the differential tests assert this entry-for-entry.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from ..graphs.static_graph import Graph
from .hotpath import hot_loop
from .result import STAT_DEGREE_ONE, STAT_PEEL, MISResult
from .trace import EXCLUDE, INCLUDE, PEEL
from .vectorized import VecWorkspace, drive_bdone_vec
from .workspace import FlatWorkspace
from ..obs.instrument import finish_profile, instrumented_factory, traced_replay
from ..obs.telemetry import get_telemetry, phase

__all__ = ["bdone"]


def _run_generic(workspace: Any) -> None:
    """Drive any workspace through BDOne via the public protocol."""
    log = workspace.log
    pop_degree_one = workspace.pop_degree_one
    pop_max_degree = workspace.pop_max_degree
    delete_vertex = workspace.delete_vertex
    iter_live_neighbors = workspace.iter_live_neighbors
    bump = log.bump
    while True:
        u = pop_degree_one()
        if u is not None:
            for v in iter_live_neighbors(u):
                delete_vertex(v, "exclude")
                break
            bump(STAT_DEGREE_ONE)
            continue
        u = pop_max_degree()
        if u is None:
            break
        delete_vertex(u, "peel")
        bump(STAT_PEEL)


@hot_loop
def _run_flat(workspace: FlatWorkspace) -> None:
    """BDOne specialized to the flat CSR buffers.

    Identical decision sequence to :func:`_run_generic`; the degree-one
    cascade and the deletions are fused into one loop over locals.
    """
    log = workspace.log
    append_entry = log.entries.append
    adj = workspace.adj
    xadj = workspace.xadj
    deg = workspace.deg
    alive = workspace.alive
    v1 = workspace.v1
    v1_pop = v1.pop
    v1_append = v1.append
    pop_max_degree = workspace.pop_max_degree
    dead = 0
    deg_sum_drop = 0
    degree_one_count = 0
    peel_count = 0
    while True:
        # --- degree-one rule: delete the sole live neighbour of u ------
        u = -1
        while v1:
            x = v1_pop()
            if alive[x] and deg[x] == 1:
                u = x
                break
        if u >= 0:
            for v in adj[xadj[u] : xadj[u + 1]]:
                if alive[v]:
                    break
            alive[v] = 0
            dead += 1
            deg_sum_drop += 2 * deg[v]
            append_entry((EXCLUDE, (v,)))
            for w in adj[xadj[v] : xadj[v + 1]]:
                if alive[w]:
                    d = deg[w] - 1
                    deg[w] = d
                    if d == 1:
                        v1_append(w)
                    elif d == 0:
                        alive[w] = 0
                        dead += 1
                        append_entry((INCLUDE, (w,)))
            degree_one_count += 1
            continue
        # --- peel the maximum-degree vertex ----------------------------
        u = pop_max_degree()
        if u is None:
            break
        alive[u] = 0
        dead += 1
        deg_sum_drop += 2 * deg[u]
        append_entry((PEEL, (u,)))
        for w in adj[xadj[u] : xadj[u + 1]]:
            if alive[w]:
                d = deg[w] - 1
                deg[w] = d
                if d == 1:
                    v1_append(w)
                elif d == 0:
                    alive[w] = 0
                    dead += 1
                    append_entry((INCLUDE, (w,)))
        peel_count += 1
    workspace._nlive -= dead
    workspace._live_deg_sum -= deg_sum_drop
    if degree_one_count:
        log.bump(STAT_DEGREE_ONE, degree_one_count)
    if peel_count:
        log.bump(STAT_PEEL, peel_count)


def bdone(
    graph: Graph,
    workspace_factory: Optional[Callable[..., object]] = None,
) -> MISResult:
    """Compute a maximal independent set of ``graph`` with BDOne.

    ``workspace_factory`` selects the mutable-state backend (default
    :class:`~repro.core.workspace.FlatWorkspace`; pass
    :class:`~repro.core.workspace.ArrayWorkspace` for the list-of-lists
    oracle).  Returns an :class:`~repro.core.result.MISResult`; the result
    carries the Theorem-6.1 upper bound and is flagged exact when no peeled
    vertex stayed outside the final solution.
    """
    start = time.perf_counter()
    telemetry = get_telemetry()  # one global check per run
    factory = FlatWorkspace if workspace_factory is None else workspace_factory
    if telemetry is not None and factory is not VecWorkspace:
        # Vectorized runs are observed per sweep (``vec-sweep`` spans), not
        # per mutation event — see repro.core.vectorized.
        factory = instrumented_factory(factory, telemetry, "BDOne", graph.name)
    with phase(telemetry, "setup", algorithm="BDOne", graph=graph.name):
        workspace = factory(graph, track_degree_two=False)
    with phase(telemetry, "reduce", algorithm="BDOne", graph=graph.name) as span:
        if type(workspace) is FlatWorkspace:
            _run_flat(workspace)
        elif type(workspace) is VecWorkspace:
            drive_bdone_vec(workspace)
        else:
            _run_generic(workspace)
        span.meta["counters"] = dict(workspace.log.stats)
    log = workspace.log
    if telemetry is not None:
        finish_profile(workspace)
        telemetry.add_counters(log.stats)
        outcome = traced_replay(log, graph, telemetry, "BDOne")
    else:
        outcome = log.replay(graph)
    return MISResult(
        algorithm="BDOne",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(log.stats),
        elapsed=time.perf_counter() - start,
    )
