"""BDOne — the efficient baseline (paper Algorithm 2, Section 3.2).

Reducing-Peeling with the degree-one reduction as the only exact rule:

* while a degree-one vertex ``u`` exists, delete its unique neighbour
  (Lemma 2.1 — some maximum independent set contains ``u``);
* otherwise peel the highest-degree vertex (inexact reduction).

Runs in O(m) time and 2m + O(n) space thanks to mark-deleted adjacency
arrays and the lazy max-degree bucket queue.
"""

from __future__ import annotations

import time

from ..graphs.static_graph import Graph
from .result import MISResult
from .workspace import ArrayWorkspace

__all__ = ["bdone"]


def bdone(graph: Graph) -> MISResult:
    """Compute a maximal independent set of ``graph`` with BDOne.

    Returns an :class:`~repro.core.result.MISResult`; the result carries
    the Theorem-6.1 upper bound and is flagged exact when no peeled vertex
    stayed outside the final solution.
    """
    start = time.perf_counter()
    workspace = ArrayWorkspace(graph, track_degree_two=False)
    log = workspace.log
    while True:
        u = workspace.pop_degree_one()
        if u is not None:
            for v in workspace.iter_live_neighbors(u):
                workspace.delete_vertex(v, "exclude")
                break
            log.bump("degree-one")
            continue
        u = workspace.pop_max_degree()
        if u is None:
            break
        workspace.delete_vertex(u, "peel")
        log.bump("peel")
    outcome = log.replay(graph)
    return MISResult(
        algorithm="BDOne",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=outcome.upper_bound,
        peeled=outcome.peeled,
        surviving_peels=outcome.surviving_peels,
        is_exact=outcome.is_exact,
        stats=dict(log.stats),
        elapsed=time.perf_counter() - start,
    )
