"""The Theorem-6.1 upper bound ``α(G) ≤ |I| + |R|``.

Every reducing-peeling run yields, as a by-product, an upper bound on the
independence number: ``I`` is the computed independent set and ``R`` the
peeled vertices that did not make it back into ``I`` during the maximal
extension.  When ``R`` is empty the bound matches ``|I|`` and the solution
is *certified maximum* — the certificate the paper reports with ``*`` in
Table 3.

The bound itself is computed inside
:meth:`repro.core.trace.DecisionLog.replay`; this module provides the small
user-facing helpers around it.
"""

from __future__ import annotations

from ..graphs.static_graph import Graph
from .near_linear import near_linear
from .result import MISResult

__all__ = ["reducing_peeling_upper_bound", "certify_maximum"]


def reducing_peeling_upper_bound(graph: Graph) -> int:
    """Upper bound on α(G) from one NearLinear run (Table 7's last column).

    Costs one NearLinear execution; the paper highlights that the bound is
    obtained "without any extra cost" whenever NearLinear runs anyway.
    """
    return near_linear(graph).upper_bound


def certify_maximum(result: MISResult) -> bool:
    """Whether ``result`` is certified maximum by its own bound.

    True exactly when the achieved size meets the Theorem-6.1 bound, which
    happens iff no peeled vertex stayed outside the solution.
    """
    return result.size == result.upper_bound
