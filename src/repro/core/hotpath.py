"""The ``@hot_loop`` marker for allocation-free hot paths.

The flat kernels (the fused BDOne/LinearTime loops, the NearLinear main
loop and dominance maintenance, the ARW swap scan) owe their constant
factors to a discipline the code cannot express on its own: bind
attributes to locals in a prelude, then run loop bodies that allocate no
containers, build no closures, and never chase attribute chains.  The
:mod:`repro.lint` checker (rule RL001) machine-enforces that discipline,
and this decorator is how a function opts in.

At run time the decorator is free: it stamps ``__hot_loop__`` on the
function object and returns it unchanged — no wrapper frame, so decorated
kernels cost exactly what undecorated ones do.  The stamp exists for
introspection (and tests); the linter itself matches the decorator
*syntactically*, so ``@hot_loop`` keeps working under ``from ... import``
renames only if the name ``hot_loop`` is preserved.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_loop"]

_F = TypeVar("_F", bound=Callable[..., object])


def hot_loop(fn: _F) -> _F:
    """Mark ``fn`` as a hot loop subject to RL001 (hot-loop purity).

    Inside a decorated function the :mod:`repro.lint` checker forbids
    closures and ``try``/``except`` anywhere, comprehension allocations
    anywhere, and — inside loop bodies — dict/set/list literals, calls to
    the allocating builtins (``dict``/``set``/``list``/``frozenset``/
    ``sorted``) and chained attribute lookups (``a.b.c``).  Bind what the
    loop needs to locals *before* the first loop statement.
    """
    fn.__hot_loop__ = True  # type: ignore[attr-defined]
    return fn
