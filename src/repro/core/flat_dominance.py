"""Flat-buffer dominance machinery — NearLinear's production backend.

The second wave of the flat migration (the first flattened BDOne /
LinearTime, see :mod:`repro.core.workspace`): the paper's dominance
reduction (Section 5) re-implemented over the CSR buffers.

* :class:`FlatTriangleWorkspace` is the flat twin of
  :class:`~repro.core.dominance.TriangleWorkspace`.  Where the oracle keeps
  ``tri[u]: dict[neighbour, δ]``, the flat workspace stores the per-edge
  triangle counts in one flat buffer parallel to the adjacency buffer:
  slot ``i`` of ``adj`` holds a neighbour and slot ``i`` of ``tri`` holds
  δ of that edge.  Set intersections become membership tests against a
  shared *timestamped mark array* (``stamp[w] == clock``), so no per-step
  set or dict is ever allocated; clearing is O(1) — bump the clock.
* :func:`flat_one_pass_dominance` is the same idea applied to phase 1 of
  NearLinear: the degree-decreasing dominance sweep with stamp-based
  subset tests instead of per-vertex Python sets.

Both are drop-in replacements with **identical decision sequences**: the
flat slot order is the canonical adjacency order (rows start sorted;
deletions skip dead entries in place; rewiring retargets a slot without
moving it), and :meth:`TriangleWorkspace.rewire` preserves position on its
side so the differential tests can assert log-for-log equality.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from operator import sub
from typing import List, Optional, Tuple

from ..graphs.static_graph import Graph
from .bucket_queue import MaxDegreeSelector
from .hotpath import hot_loop
from .trace import DecisionLog
from .workspace import compact_remap

__all__ = ["FlatTriangleWorkspace", "flat_one_pass_dominance"]


@hot_loop
def flat_one_pass_dominance(graph: Graph) -> List[int]:
    """Degree-decreasing dominance sweep over flat CSR buffers.

    Returns the same removed-vertex list as
    :func:`~repro.core.dominance.one_pass_dominance` (the outcome is
    iteration-order independent: a vertex is removed iff *some* neighbour
    dominates it on the current residual graph, and the outer scan order is
    fixed).  The subset test ``N(v) ⊆ N(u) ∪ {u}`` is a stamp comparison
    per element — no sets are built or mutated, and dead vertices are
    skipped in place instead of being discarded from ``n`` live sets.
    """
    n = graph.n
    xadj, adj = graph.csr_arrays()  # read-only tuples: the sweep never mutates adjacency
    deg = list(map(sub, xadj[1:], xadj))
    alive = bytearray([1]) * n if n else bytearray()
    stamp = [0] * n
    clock = 0
    order = sorted(range(n), key=deg.__getitem__, reverse=True)
    removed: List[int] = []
    candidates: List[int] = []  # reused across iterations (hot-loop purity)
    for u in order:
        if not alive[u]:
            continue
        du = deg[u]
        clock += 1
        row_u = adj[xadj[u] : xadj[u + 1]]
        dominated = False
        candidates.clear()
        for w in row_u:
            if alive[w]:
                stamp[w] = clock
                dw = deg[w]
                if dw <= du:
                    if dw == 1:
                        # Leaf neighbour: N[w] = {w, u} ⊆ N[u], no scan needed.
                        dominated = True
                    else:
                        candidates.append(w)
        if not dominated and candidates:
            # Cheapest candidate first: a low-degree neighbour is both the
            # likeliest dominator and the cheapest subset test, and the
            # outcome is dominator-order independent.
            candidates.sort(key=deg.__getitem__)
            for v in candidates:
                # v dominates u iff every other live neighbour of v is marked.
                for x in adj[xadj[v] : xadj[v + 1]]:
                    if alive[x] and x != u and stamp[x] != clock:
                        break
                else:
                    dominated = True
                    break
        if dominated:
            alive[u] = 0
            removed.append(u)
            for w in row_u:
                if alive[w]:
                    deg[w] -= 1
            deg[u] = 0
    return removed


class FlatTriangleWorkspace:
    """Flat CSR workspace with per-edge triangle counts for NearLinear.

    Public surface and decision behaviour are identical to
    :class:`~repro.core.dominance.TriangleWorkspace`; the representation is
    the flat layout of :class:`~repro.core.workspace.FlatWorkspace` plus:

    ``tri``
        Flat buffer of per-edge triangle counts, parallel to ``adj``:
        ``tri[i]`` is δ of the edge ``(v, adj[i])`` for any slot ``i`` in
        ``v``'s row.  Lemma 5.2's dominance test ``δ(v, u) = d(v) − 1``
        is then two flat reads.  (``adj``/``tri`` are plain lists rather
        than ``array('i')``: CPython boxes a fresh int on every typed-array
        indexed read, which measurably dominates the fused delete scan,
        while list reads hand back the already-boxed ids.)
    ``_stamp`` / ``_clock``
        The shared timestamped mark array: ``stamp[w] == clock`` means
        ``w`` is in the set currently being tested.  Resetting the set is
        a clock bump, so dominance maintenance never allocates.
    ``_stamp_slot``
        Parallel to ``_stamp``: the adjacency slot at which the marked
        vertex was seen, letting :meth:`settle_new_edge` update both
        directions of an edge without re-scanning the marking row.

    Dead vertices are dropped lazily: every row has a live-end pointer
    ``_rend[v]`` and :meth:`delete_vertex` *compacts* a row while scanning
    it — live entries shift toward ``xadj[v]``, preserving their relative
    order, and ``_rend[v]`` shrinks.  Rows therefore cost what the oracle's
    shrinking dicts cost, slots beyond ``_rend[v]`` are stale garbage that
    no scan may read, and the surviving slot order still mirrors the
    oracle's dict order — which is what makes the decision logs
    byte-identical.
    """

    __slots__ = (
        "graph",
        "n",
        "adj",
        "xadj",
        "tri",
        "deg",
        "alive",
        "log",
        "v1",
        "v2",
        "dominated",
        "_selector",
        "_hint",
        "_rend",
        "_stamp",
        "_stamp_slot",
        "_clock",
        "_nlive",
        "_live_deg_sum",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        n = self.n = graph.n
        offsets, targets = graph.csr_arrays()
        # Flat CSR storage as plain lists: the graph's cached tuples hold
        # the vertex ids pre-boxed, so ``list(...)`` is a pointer copy and
        # the hot loops never pay CPython's per-read int boxing the way
        # ``array('i')`` indexed reads do.
        self.xadj = offsets
        self.adj = list(targets)
        self.tri = [0] * len(targets)
        self.deg = list(map(sub, offsets[1:], offsets))
        self.alive = bytearray([1]) * n if n else bytearray()
        self.log = DecisionLog()
        self.v1: List[int] = []
        self.v2: List[int] = []
        self.dominated: List[int] = []
        self._selector: Optional[MaxDegreeSelector] = None
        self._hint = list(offsets[:-1])
        self._rend = list(offsets[1:])
        self._stamp = [0] * n
        self._stamp_slot = [0] * n
        self._clock = 0
        self._nlive = n
        self._live_deg_sum = len(targets)
        seeded = self._count_triangles()
        deg = self.deg
        for v in range(n):
            d = deg[v]
            if d == 0:
                self.alive[v] = 0
                self._nlive -= 1
                self.log.include(v)
            elif d == 1:
                self.v1.append(v)
            elif d == 2:
                self.v2.append(v)
        if not seeded:
            self._seed_dominated()

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _count_triangles(self) -> bool:
        """Fill δ for every adjacency slot (scipy when available).

        Returns ``True`` when the backend also seeded ``dominated`` (the
        vectorised path does both in one sweep), ``False`` when the caller
        still needs :meth:`_seed_dominated`.
        """
        if self._count_triangles_scipy():
            return True
        self._count_triangles_python()
        return False

    def _count_triangles_scipy(self) -> bool:
        try:
            import numpy
            from scipy import sparse
        except ImportError:  # pragma: no cover - scipy is present in CI
            return False
        if self.n == 0 or not len(self.adj):
            return True
        n = self.n
        indptr = numpy.asarray(self.xadj, dtype=numpy.int64)
        indices = numpy.asarray(self.adj, dtype=numpy.int64)
        data = numpy.ones(len(indices), dtype=numpy.int64)
        adjacency = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        counts = (adjacency @ adjacency).multiply(adjacency).tocsr()
        counts.sort_indices()
        # Scatter the counts into the parallel ``tri`` buffer without a
        # Python-level merge walk.  Both matrices are row-major with sorted
        # columns, so the composite key ``row·n + col`` is globally sorted
        # for each; the counts pattern is a subset of the adjacency pattern
        # (δ lives on edges), hence searchsorted yields each count's exact
        # adjacency slot.
        row_of_slot = numpy.repeat(
            numpy.arange(n, dtype=numpy.int64), numpy.diff(indptr)
        )
        adj_keys = row_of_slot * n + indices
        counts_rows = numpy.repeat(
            numpy.arange(n, dtype=numpy.int64), numpy.diff(counts.indptr)
        )
        count_keys = counts_rows * n + counts.indices
        slots = numpy.searchsorted(adj_keys, count_keys)
        tri = numpy.zeros(len(indices), dtype=numpy.int64)
        tri[slots] = counts.data
        self.tri = tri.tolist()
        # Seed the dominance worklist vectorised too: a slot (v, u) seeds
        # ``u`` when δ(v, u) = d(v) − 1.  Selecting by the global slot mask
        # preserves the oracle's append order (v ascending, row order).
        degrees = numpy.diff(indptr)
        self.dominated = indices[tri == degrees[row_of_slot] - 1].tolist()
        return True

    def _count_triangles_python(self) -> None:
        """Stamp-based fallback: δ(u, v) = |N(u) ∩ N(v)| per edge u < v."""
        adj = self.adj
        xadj = self.xadj
        tri = self.tri
        stamp = self._stamp
        clock = self._clock
        for u in range(self.n):
            lo, hi = xadj[u], xadj[u + 1]
            if lo == hi:
                continue
            clock += 1
            for w in adj[lo:hi]:
                stamp[w] = clock
            for i in range(lo, hi):
                v = adj[i]
                if v < u:
                    continue
                delta = 0
                for x in adj[xadj[v] : xadj[v + 1]]:
                    if stamp[x] == clock:
                        delta += 1
                if delta:
                    tri[i] = delta
                    # Rows are sorted at construction time: binary-search
                    # the mirror slot (v, u).
                    tri[bisect_left(adj, u, xadj[v], xadj[v + 1])] = delta
        self._clock = clock

    def _seed_dominated(self) -> None:
        """Initial worklist D = {u | ∃ (v,u) ∈ E with δ(v,u) = d(v) − 1}."""
        adj = self.adj
        xadj = self.xadj
        tri = self.tri
        deg = self.deg
        append = self.dominated.append
        for v in range(self.n):
            if not self.alive[v]:
                continue
            target = deg[v] - 1
            lo, hi = xadj[v], xadj[v + 1]
            for u, count in zip(adj[lo:hi], tri[lo:hi]):
                if count == target:
                    append(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_neighbors(self, v: int) -> List[int]:
        """The current neighbours of ``v`` (skipping deleted vertices)."""
        alive = self.alive
        return [w for w in self.adj[self.xadj[v] : self._rend[v]] if alive[w]]

    def iter_live_neighbors(self, v: int) -> List[int]:
        """Current neighbours of ``v`` (eagerly materialised list)."""
        alive = self.alive
        return [w for w in self.adj[self.xadj[v] : self._rend[v]] if alive[w]]

    def has_live_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` exists (scan the smaller side)."""
        deg = self.deg
        if deg[u] > deg[v]:
            u, v = v, u
        if not self.alive[v]:
            return False
        return v in self.adj[self.xadj[u] : self._rend[u]]

    def is_dominated(self, u: int) -> bool:
        """Re-check: is ``u`` currently dominated by some neighbour?

        Lemma 5.2 over the flat buffers: two array reads per live
        neighbour, no set intersection.
        """
        deg = self.deg
        alive = self.alive
        lo = self.xadj[u]
        hi = self._rend[u]
        for v, count in zip(self.adj[lo:hi], self.tri[lo:hi]):
            if alive[v] and count == deg[v] - 1:
                return True
        return False

    @property
    def live_vertex_count(self) -> int:
        """Number of not-yet-deleted vertices (O(1), counter-maintained)."""
        return self._nlive

    def live_edge_count(self) -> int:
        """Number of live edges (O(1), counter-maintained)."""
        return self._live_deg_sum // 2

    # ------------------------------------------------------------------
    # Worklist pops
    # ------------------------------------------------------------------
    def pop_degree_one(self) -> Optional[int]:
        """Pop a validated degree-one vertex, or ``None``."""
        alive = self.alive
        deg = self.deg
        v1 = self.v1
        while v1:
            v = v1.pop()
            if alive[v] and deg[v] == 1:
                return v
        return None

    def pop_degree_two(self) -> Optional[int]:
        """Pop a validated degree-two vertex, or ``None``."""
        alive = self.alive
        deg = self.deg
        v2 = self.v2
        while v2:
            v = v2.pop()
            if alive[v] and deg[v] == 2:
                return v
        return None

    def pop_dominated(self) -> Optional[int]:
        """Pop a *verified* dominated vertex (Algorithm 5 Line 8)."""
        alive = self.alive
        dominated = self.dominated
        is_dominated = self.is_dominated
        while dominated:
            u = dominated.pop()
            if alive[u] and is_dominated(u):
                return u
        return None

    def pop_max_degree(self) -> Optional[int]:
        """A live vertex of maximum degree (lazy bucket queue)."""
        if self._selector is None:
            self._selector = MaxDegreeSelector(self.deg, self.alive)
        return self._selector.pop_max()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    @hot_loop
    def include(self, v: int) -> None:
        """Commit degree-zero ``v`` to the solution."""
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]
        self.log.include(v)

    @hot_loop
    def _refile(self, w: int) -> None:
        d = self.deg[w]
        if d == 0:
            self.include(w)
        elif d == 1:
            self.v1.append(w)
        elif d == 2:
            self.v2.append(w)

    @hot_loop
    def delete_vertex(self, u: int, reason: str = "exclude") -> None:
        """Delete ``u`` with full triangle/dominance maintenance.

        The Section 5 update rule over flat buffers: stamp N(u), then a
        single fused pass per neighbour ``v`` that (a) decrements δ of
        every stamped edge slot (each in-N(u) edge is seen once from each
        side), (b) surfaces new dominance candidates ``x`` with
        δ(v, x) = d(v) − 1, and (c) *compacts* the row — live entries
        shift to the front (order preserved) and ``_rend[v]`` shrinks, so
        dead slots are never rescanned.

        Fusing (a) and (b) is sound because all degree decrements happen
        before any row scan starts, and each row's δ slots are final once
        its own scan has passed them; the candidate append order (per
        neighbour, in row order) is exactly the oracle's.  No vertex dies
        between the scans and the re-file loop, so the alive tests see the
        same state the oracle's trailing candidate loop sees.
        """
        adj = self.adj
        xadj = self.xadj
        tri = self.tri
        deg = self.deg
        alive = self.alive
        stamp = self._stamp
        rend = self._rend
        alive[u] = 0
        self._nlive -= 1
        self._live_deg_sum -= 2 * deg[u]
        if reason == "peel":
            self.log.peel(u)
        else:
            self.log.exclude(u)
        clock = self._clock + 1
        self._clock = clock
        neighbours = []
        append = neighbours.append
        for w in adj[xadj[u] : rend[u]]:
            if alive[w]:
                stamp[w] = clock
                append(w)
                deg[w] -= 1
        dominated_append = self.dominated.append
        for v in neighbours:
            target = deg[v] - 1
            k = lo = xadj[v]
            hi = rend[v]
            for x, t in zip(adj[lo:hi], tri[lo:hi]):
                if alive[x]:
                    if stamp[x] == clock:
                        t -= 1
                    adj[k] = x
                    tri[k] = t
                    if t == target:
                        dominated_append(x)
                    k += 1
            rend[v] = k
        # Re-file degrees (candidates were surfaced in the fused pass).
        for v in neighbours:
            if alive[v]:
                self._refile(v)

    # ------------------------------------------------------------------
    # Path-reduction support (used by the shared Lemma 4.1 driver)
    # ------------------------------------------------------------------
    def remove_silently(self, v: int) -> None:
        """Mark a path-interior vertex dead; caller fixes endpoints.

        Interior vertices of a maximal degree-two path belong to no
        triangle, so no count maintenance is needed; neighbours skip the
        dead entry in place.
        """
        self.alive[v] = 0
        self._nlive -= 1
        self._live_deg_sum -= self.deg[v]

    def rewire(self, v: int, old: int, new: int) -> None:
        """Replace the adjacency entry ``old`` with ``new`` in ``v``'s row.

        Same hint machinery as :class:`~repro.core.workspace.FlatWorkspace`
        (Lemma 4.1 retargets the same anchor slot on consecutive path
        reductions); δ of the just-created edge is reset to zero and later
        settled by :meth:`settle_new_edge` when both endpoints exist.
        """
        adj = self.adj
        i = self._hint[v]
        if adj[i] != old or not self.xadj[v] <= i < self._rend[v]:
            i = self.xadj[v]
            hi = self._rend[v]
            while adj[i] != old:
                i += 1
                if i >= hi:
                    raise ValueError(f"{old} is not an adjacency entry of {v}")
        adj[i] = new
        self.tri[i] = 0
        self._hint[v] = i

    def settle_new_edge(self, a: int, b: int) -> None:
        """Compute δ(a, b) for a just-created edge and propagate dominance.

        Mirrors the oracle exactly (Figure 4(e) update): stamp the smaller
        endpoint's... rather, the *larger* row is stamped and the smaller
        row scanned, so the common-neighbour order matches the oracle's
        iteration over the smaller row.  ``_stamp_slot`` remembers where in
        ``b``'s row each marked vertex sits, so the four per-common-vertex
        count updates need just one extra scan (of ``x``'s row).
        """
        adj = self.adj
        xadj = self.xadj
        tri = self.tri
        deg = self.deg
        alive = self.alive
        if deg[a] > deg[b]:
            a, b = b, a
        stamp = self._stamp
        slot_of = self._stamp_slot
        clock = self._clock + 1
        self._clock = clock
        rend = self._rend
        slot_b_a = -1
        for j in range(xadj[b], rend[b]):
            x = adj[j]
            if alive[x]:
                stamp[x] = clock
                slot_of[x] = j
                if x == a:
                    slot_b_a = j
        common: List[Tuple[int, int]] = []
        append = common.append
        slot_a_b = -1
        for i in range(xadj[a], rend[a]):
            x = adj[i]
            if not alive[x]:
                continue
            if x == b:
                slot_a_b = i
            elif stamp[x] == clock:
                append((x, i))
        delta = len(common)
        tri[slot_a_b] = delta
        tri[slot_b_a] = delta
        dominated = self.dominated
        deg_a_target = deg[a] - 1
        deg_b_target = deg[b] - 1
        for x, slot_a_x in common:
            slot_x_a = slot_x_b = -1
            for j in range(xadj[x], rend[x]):
                w = adj[j]
                if w == a:
                    slot_x_a = j
                elif w == b:
                    slot_x_b = j
            slot_b_x = slot_of[x]
            tri[slot_x_a] += 1
            tri[slot_a_x] += 1
            tri[slot_x_b] += 1
            tri[slot_b_x] += 1
            target = deg[x] - 1
            if tri[slot_x_a] == target:
                dominated.append(a)
            if tri[slot_x_b] == target:
                dominated.append(b)
            if tri[slot_a_x] == deg_a_target:
                dominated.append(x)
            if tri[slot_b_x] == deg_b_target:
                dominated.append(x)
        if delta == deg_a_target:
            dominated.append(b)
        if delta == deg_b_target:
            dominated.append(a)

    def decrement_degree(self, v: int) -> None:
        """Degree bookkeeping for an even-path anchor (Figure 4(d)).

        d(v) drops while the triangle counts of v's edges stay put, so v
        may newly dominate a neighbour.
        """
        self.deg[v] -= 1
        self._live_deg_sum -= 1
        self._refile(v)
        if not self.alive[v]:
            return
        alive = self.alive
        target = self.deg[v] - 1
        dominated = self.dominated
        lo = self.xadj[v]
        hi = self._rend[v]
        for x, count in zip(self.adj[lo:hi], self.tri[lo:hi]):
            if alive[x] and count == target:
                dominated.append(x)

    def refile(self, v: int) -> None:
        """Public re-file hook after a degree-preserving rewiring."""
        self._refile(v)

    # ------------------------------------------------------------------
    # Kernel export
    # ------------------------------------------------------------------
    def export_kernel(self) -> Tuple[Graph, List[int]]:
        """Compacted live residual graph plus the id mapping."""
        alive = self.alive
        adj = self.adj
        xadj = self.xadj
        remap, old_ids = compact_remap(alive, self.n)
        rend = self._rend
        offsets = [0]
        targets: List[int] = []
        extend = targets.extend
        for old in old_ids:
            row = sorted(
                remap[w] for w in adj[xadj[old] : rend[old]] if alive[w]
            )
            extend(row)
            offsets.append(len(targets))
        name = f"{self.graph.name}-kernel" if self.graph.name else "kernel"
        return Graph(offsets, targets, name=name), old_ids
