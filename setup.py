"""Setuptools shim.

The execution environment has no ``wheel`` package (offline), so PEP 660
editable wheels cannot be built; this classic ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop install.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
